"""Tests for the mixed BAT + short-transaction workload substrate."""

import pytest

from repro import SimulationParameters, run_simulation
from repro.core import LockMode
from repro.engine import RandomStreams
from repro.errors import WorkloadError
from repro.workloads import MixedWorkload, pattern1, pattern1_catalog, \
    short_transactions
from repro.workloads.mixed import BAT_LABEL, SHORT_LABEL, relabel


class TestShortTransactions:
    def test_shape(self):
        workload = short_transactions(16)
        streams = RandomStreams(0)
        for tid in range(1, 50):
            spec = workload(tid, streams)
            assert 1 <= len(spec.steps) <= 2
            assert spec.steps[0].mode is LockMode.SHARED
            assert spec.steps[0].cost == 0.05
            assert spec.label == SHORT_LABEL

    def test_write_fraction_zero_means_read_only(self):
        workload = short_transactions(16, write_fraction=0.0)
        streams = RandomStreams(1)
        assert all(len(workload(tid, streams).steps) == 1
                   for tid in range(1, 50))

    def test_write_fraction_one_always_writes(self):
        workload = short_transactions(16, write_fraction=1.0)
        streams = RandomStreams(1)
        for tid in range(1, 20):
            steps = workload(tid, streams).steps
            assert steps[-1].mode is LockMode.EXCLUSIVE

    def test_validation(self):
        with pytest.raises(WorkloadError):
            short_transactions(1)
        with pytest.raises(WorkloadError):
            short_transactions(4, write_fraction=1.5)


class TestMixedWorkload:
    def test_labels_and_fraction(self):
        mixed = MixedWorkload(pattern1(16), short_transactions(16),
                              bat_fraction=0.3)
        streams = RandomStreams(2)
        labels = [mixed(tid, streams).label for tid in range(1, 401)]
        bats = labels.count(BAT_LABEL)
        assert labels.count(SHORT_LABEL) + bats == 400
        assert 0.2 < bats / 400 < 0.4  # close to 0.3

    def test_bat_fraction_bounds(self):
        with pytest.raises(WorkloadError):
            MixedWorkload(pattern1(16), short_transactions(16),
                          bat_fraction=1.5)

    def test_extremes(self):
        streams = RandomStreams(3)
        all_bat = MixedWorkload(pattern1(16), short_transactions(16),
                                bat_fraction=1.0)
        assert all(all_bat(t, streams).label == BAT_LABEL
                   for t in range(1, 20))
        none_bat = MixedWorkload(pattern1(16), short_transactions(16),
                                 bat_fraction=0.0)
        assert all(none_bat(t, streams).label == SHORT_LABEL
                   for t in range(1, 20))

    def test_relabel(self):
        streams = RandomStreams(4)
        labelled = relabel(pattern1(16), "batch")
        assert labelled(1, streams).label == "batch"


class TestMixedSimulation:
    def run_mixed(self, scheduler):
        mixed = MixedWorkload(pattern1(16), short_transactions(16),
                              bat_fraction=0.15)
        params = SimulationParameters(scheduler=scheduler,
                                      arrival_rate_tps=2.0,
                                      sim_clocks=200_000, seed=8,
                                      num_partitions=16)
        return run_simulation(params, mixed, catalog=pattern1_catalog())

    def test_per_class_metrics_produced(self):
        result = self.run_mixed("C2PL")
        by_label = result.metrics.response_time_by_label
        assert BAT_LABEL in by_label and SHORT_LABEL in by_label
        assert by_label[BAT_LABEL] > by_label[SHORT_LABEL]

    def test_short_transactions_suffer_behind_bats(self):
        """A short transaction alone needs ~150 ms; behind BAT X-locks its
        mean RT inflates by orders of magnitude — the paper's motivation
        for class-aware scheduling."""
        result = self.run_mixed("C2PL")
        short_rt = result.metrics.response_time_by_label[SHORT_LABEL]
        assert short_rt > 1000  # at least one second on average

    @pytest.mark.parametrize("scheduler", ["K2", "CHAIN"])
    def test_wtpg_schedulers_handle_mixture(self, scheduler):
        result = self.run_mixed(scheduler)
        assert result.metrics.commits > 50
