"""Unit tests for the pattern DSL and the paper's three workloads."""

import pytest

from repro.core import LockMode
from repro.engine import RandomStreams
from repro.errors import WorkloadError
from repro.workloads import (parse_pattern, pattern1, pattern1_catalog,
                             pattern2, pattern2_catalog, pattern3)
from repro.workloads.patterns import bind_pattern


class TestParsePattern:
    def test_pattern1_text(self):
        templates = parse_pattern("r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)")
        assert templates == [("r", "F1", 1.0), ("r", "F2", 5.0),
                             ("w", "F1", 0.2), ("w", "F2", 1.0)]

    def test_whitespace_tolerant(self):
        assert parse_pattern("r(A:1)->w(B:2)") == [("r", "A", 1.0),
                                                   ("w", "B", 2.0)]

    def test_bad_op_rejected(self):
        with pytest.raises(WorkloadError):
            parse_pattern("x(A:1)")

    def test_bad_shape_rejected(self):
        with pytest.raises(WorkloadError):
            parse_pattern("read A for 1")

    def test_bind_pattern(self):
        spec = bind_pattern(5, parse_pattern("r(A:1) -> w(B:2)"),
                            {"A": 3, "B": 7})
        assert spec.tid == 5
        assert spec.steps[0].partition == 3
        assert spec.steps[0].mode is LockMode.SHARED
        assert spec.steps[1].partition == 7
        assert spec.steps[1].mode is LockMode.EXCLUSIVE

    def test_bind_missing_symbol_rejected(self):
        with pytest.raises(WorkloadError):
            bind_pattern(1, parse_pattern("r(A:1)"), {})


class TestPattern1:
    def test_shape_and_costs(self):
        spec = pattern1()(1, RandomStreams(0))
        assert len(spec.steps) == 4
        costs = [s.cost for s in spec.steps]
        assert costs == [1.0, 5.0, 0.2, 1.0]
        assert spec.actual_total == pytest.approx(7.2)

    def test_f1_f2_distinct_and_in_range(self):
        workload = pattern1(num_partitions=16)
        streams = RandomStreams(42)
        for tid in range(100):
            spec = workload(tid, streams)
            f1 = spec.steps[0].partition
            f2 = spec.steps[1].partition
            assert f1 != f2
            assert 0 <= f1 < 16 and 0 <= f2 < 16
            # Write steps revisit the same two partitions.
            assert spec.steps[2].partition == f1
            assert spec.steps[3].partition == f2

    def test_catalog_matches(self):
        catalog = pattern1_catalog()
        assert len(catalog) == 16
        assert catalog.size_of(0) == 5.0

    def test_error_sigma_distorts_declared_only(self):
        workload = pattern1(error_sigma=1.0)
        streams = RandomStreams(7)
        spec = workload(1, streams)
        assert [s.cost for s in spec.steps] == [1.0, 5.0, 0.2, 1.0]
        declared = [s.declared_cost for s in spec.steps]
        assert declared != [1.0, 5.0, 0.2, 1.0]
        assert all(d >= 0 for d in declared)

    def test_sigma_zero_is_exact(self):
        spec = pattern1(error_sigma=0.0)(1, RandomStreams(7))
        assert all(s.declared_cost == s.cost for s in spec.steps)

    def test_too_few_partitions_rejected(self):
        with pytest.raises(WorkloadError):
            pattern1(num_partitions=1)


class TestPattern2And3:
    def test_pattern2_shape(self):
        spec = pattern2(num_hots=8)(1, RandomStreams(0))
        assert [s.cost for s in spec.steps] == [5.0, 1.0, 1.0]
        assert [str(s.mode) for s in spec.steps] == ["S", "X", "X"]

    def test_pattern3_shape(self):
        spec = pattern3(num_hots=8)(1, RandomStreams(0))
        assert [s.cost for s in spec.steps] == [4.0, 1.0, 2.0]

    def test_binding_ranges(self):
        workload = pattern2(num_hots=4, num_readonly=8)
        streams = RandomStreams(3)
        for tid in range(100):
            spec = workload(tid, streams)
            b, f1, f2 = [s.partition for s in spec.steps]
            assert 0 <= b < 8           # read-only partitions
            assert 8 <= f1 < 12         # hot set
            assert 8 <= f2 < 12
            assert f1 != f2

    def test_catalog_layout(self):
        catalog = pattern2_catalog(num_hots=4)
        assert catalog.hot_pids == [8, 9, 10, 11]
        assert catalog.size_of(8) == 1.0
        assert catalog.size_of(3) == 5.0

    def test_min_hot_partitions(self):
        with pytest.raises(WorkloadError):
            pattern2(num_hots=1)
        with pytest.raises(WorkloadError):
            pattern3(num_hots=1)

    def test_repr_shows_pattern(self):
        assert "r(B:5)" in repr(pattern2())


class TestErrorModel:
    def test_distribution_is_unbiased_for_small_sigma(self):
        from repro.workloads import declare_with_error
        from repro.core import Step
        streams = RandomStreams(11)
        steps = [Step.read(0, 10.0)] * 2000
        declared = [s.declared_cost
                    for s in declare_with_error(steps, streams, sigma=0.3)]
        mean = sum(declared) / len(declared)
        assert mean == pytest.approx(10.0, rel=0.05)

    def test_clipping_at_minus_one(self):
        from repro.workloads import declare_with_error
        from repro.core import Step
        streams = RandomStreams(13)
        steps = [Step.read(0, 1.0)] * 5000
        declared = [s.declared_cost
                    for s in declare_with_error(steps, streams, sigma=2.0)]
        assert min(declared) == 0.0   # clipped, never negative
        assert all(d >= 0 for d in declared)

    def test_negative_sigma_rejected(self):
        from repro.workloads import declare_with_error
        from repro.core import Step
        with pytest.raises(ValueError):
            declare_with_error([Step.read(0, 1)], RandomStreams(0), -0.1)


class TestBulkScan:
    def test_scan_plus_update_on_one_partition(self):
        from repro.workloads import bulk_scan
        spec = bulk_scan(num_partitions=64)(1, RandomStreams(3))
        assert len(spec.steps) == 2
        scan, update = spec.steps
        assert scan.mode is LockMode.SHARED and scan.cost == 512.0
        assert update.mode is LockMode.EXCLUSIVE and update.cost == 1.0
        assert scan.partition == update.partition
        assert 0 <= scan.partition < 64

    def test_catalog_covers_all_nodes(self):
        from repro.workloads import bulk_scan_catalog
        catalog = bulk_scan_catalog(num_partitions=64, num_nodes=64)
        assert len(catalog) == 64
        assert {catalog.node_of(pid) for pid in range(64)} == set(range(64))
        assert all(catalog.size_of(pid) == 512.0 for pid in range(64))

    def test_draws_are_reproducible(self):
        from repro.workloads import bulk_scan
        wl = bulk_scan()
        assert (wl(1, RandomStreams(9)).steps[0].partition
                == wl(1, RandomStreams(9)).steps[0].partition)

    def test_empty_rejected(self):
        from repro.workloads import bulk_scan
        with pytest.raises(WorkloadError):
            bulk_scan(num_partitions=0)
