"""Tests for trace-driven workloads (save / load / replay)."""

import pytest

from repro.core import LockMode, Step, TransactionSpec
from repro.engine import RandomStreams
from repro.errors import WorkloadError
from repro.workloads import pattern1
from repro.workloads.tracefile import (ReplayWorkload, load_trace,
                                       record_workload, save_trace,
                                       spec_from_dict, spec_to_dict)


def sample_specs():
    return [
        TransactionSpec(1, [Step.read(0, 5), Step.write(1, 1)]),
        TransactionSpec(2, [Step.write(3, 2, declared_cost=2.5)]),
    ]


class TestSerialisation:
    def test_round_trip_dict(self):
        for spec in sample_specs():
            again = spec_from_dict(spec_to_dict(spec))
            assert again.tid == spec.tid
            assert [(s.partition, s.mode, s.cost, s.declared_cost)
                    for s in again.steps] == \
                   [(s.partition, s.mode, s.cost, s.declared_cost)
                    for s in spec.steps]

    def test_declared_cost_only_written_when_different(self):
        plain = spec_to_dict(sample_specs()[0])
        assert "declared_cost" not in plain["steps"][0]
        erroneous = spec_to_dict(sample_specs()[1])
        assert erroneous["steps"][0]["declared_cost"] == 2.5

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(path, sample_specs())
        loaded = load_trace(path)
        assert len(loaded) == 2
        assert loaded[0].steps[0].mode is LockMode.SHARED
        assert loaded[1].steps[0].declared_cost == 2.5

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(path, sample_specs())
        path.write_text(path.read_text() + "\n\n")
        assert len(load_trace(path)) == 2

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"tid": 1, "steps": [{"op": "r", "partition": 0, "cost": 1}]}\n'
            'not json\n')
        with pytest.raises(WorkloadError, match=":2"):
            load_trace(path)

    def test_malformed_records_rejected(self):
        with pytest.raises(WorkloadError):
            spec_from_dict({"steps": []})
        with pytest.raises(WorkloadError):
            spec_from_dict({"tid": 1, "steps": [{"op": "x", "partition": 0,
                                                 "cost": 1}]})


class TestReplayWorkload:
    def test_replays_in_order_with_new_tids(self):
        replay = ReplayWorkload(sample_specs())
        first = replay(1)
        second = replay(2)
        assert first.tid == 1 and second.tid == 2
        assert first.steps[0].partition == 0
        assert second.steps[0].partition == 3

    def test_cycles_by_default(self):
        replay = ReplayWorkload(sample_specs())
        third = replay(3)
        assert third.tid == 3
        assert third.steps[0].partition == 0  # wrapped around

    def test_no_cycle_raises_when_exhausted(self):
        replay = ReplayWorkload(sample_specs(), cycle=False)
        replay(1)
        replay(2)
        with pytest.raises(WorkloadError, match="exhausted"):
            replay(3)

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            ReplayWorkload([])

    def test_usable_in_simulation(self):
        from repro import SimulationParameters, run_simulation
        from repro.workloads import pattern1_catalog

        trace = record_workload(pattern1(), count=50, seed=5)
        params = SimulationParameters(scheduler="C2PL", arrival_rate_tps=0.4,
                                      sim_clocks=100_000, seed=5,
                                      num_partitions=16)
        result = run_simulation(params, ReplayWorkload(trace),
                                catalog=pattern1_catalog())
        assert result.metrics.commits > 0

    def test_replay_is_deterministic_across_runs(self):
        from repro import SimulationParameters, run_simulation
        from repro.workloads import pattern1_catalog

        trace = record_workload(pattern1(), count=50, seed=5)
        params = SimulationParameters(scheduler="K2", arrival_rate_tps=0.4,
                                      sim_clocks=100_000, seed=5,
                                      num_partitions=16)
        a = run_simulation(params, ReplayWorkload(trace),
                           catalog=pattern1_catalog())
        b = run_simulation(params, ReplayWorkload(trace),
                           catalog=pattern1_catalog())
        assert a.metrics.mean_response_time == b.metrics.mean_response_time


class TestRecordWorkload:
    def test_records_requested_count(self):
        trace = record_workload(pattern1(), count=10, seed=1)
        assert len(trace) == 10
        assert [spec.tid for spec in trace] == list(range(1, 11))

    def test_seeded_recording_reproducible(self):
        a = record_workload(pattern1(), count=10, seed=1)
        b = record_workload(pattern1(), count=10, seed=1)
        assert [s.steps[0].partition for s in a] == \
               [s.steps[0].partition for s in b]
