"""Tests for the seed-replication harness."""

import pytest

from repro import SimulationParameters
from repro.errors import ExperimentError
from repro.metrics.replication import (ReplicatedMetric, ReplicationResult,
                                       replicate)
from repro.workloads import pattern1, pattern1_catalog

PARAMS = SimulationParameters(scheduler="NODC", arrival_rate_tps=0.4,
                              sim_clocks=80_000, num_partitions=16)


@pytest.fixture(scope="module")
def result():
    return replicate(PARAMS, lambda: pattern1(),
                     lambda: pattern1_catalog(), seeds=(1, 2, 3))


class TestReplicate:
    def test_one_run_per_seed(self, result):
        assert len(result.runs) == 3

    def test_seeds_vary_the_outcome(self, result):
        rts = {run.mean_response_time for run in result.runs}
        assert len(rts) > 1

    def test_metric_summary(self, result):
        tps = result.throughput
        assert isinstance(tps, ReplicatedMetric)
        assert tps.half_width >= 0
        assert tps.low <= tps.mean <= tps.high
        assert min(tps.values) <= tps.mean <= max(tps.values)

    def test_summary_is_readable(self, result):
        summary = result.summary()
        assert "throughput_tps" in summary
        assert "±" in summary["throughput_tps"]

    def test_needs_two_distinct_seeds(self):
        with pytest.raises(ExperimentError):
            replicate(PARAMS, lambda: pattern1(),
                      lambda: pattern1_catalog(), seeds=(1,))
        with pytest.raises(ExperimentError):
            replicate(PARAMS, lambda: pattern1(),
                      lambda: pattern1_catalog(), seeds=(1, 1))

    def test_str_format(self):
        metric = ReplicatedMetric(0.5, 0.1, (0.4, 0.6))
        assert str(metric) == "0.500 ± 0.100"


class TestParallelReplicate:
    def test_pool_equals_serial(self):
        """max_workers changes wall-clock only, never the numbers."""
        serial = replicate(PARAMS, pattern1, pattern1_catalog,
                           seeds=(1, 2, 3), max_workers=1)
        pooled = replicate(PARAMS, pattern1, pattern1_catalog,
                           seeds=(1, 2, 3), max_workers=2)
        assert [run.as_dict() for run in serial.runs] \
            == [run.as_dict() for run in pooled.runs]

    def test_unpicklable_factories_degrade_to_serial(self, result):
        """Lambda factories cannot ship to workers; results still come."""
        pooled = replicate(PARAMS, lambda: pattern1(),
                           lambda: pattern1_catalog(), seeds=(1, 2, 3),
                           max_workers=2)
        assert [run.as_dict() for run in pooled.runs] \
            == [run.as_dict() for run in result.runs]
