"""Unit tests for the metrics collector and RunMetrics."""

import pytest

from repro.core import Step, TransactionRuntime, TransactionSpec
from repro.errors import ExperimentError
from repro.metrics import MetricsCollector


def committed_txn(tid, arrival, commit, label=""):
    spec = TransactionSpec(tid, [Step.read(0, 1)], label=label)
    txn = TransactionRuntime(spec, arrival_time=arrival)
    txn.commit_time = commit
    return txn


class TestCollection:
    def test_counts_and_response_times(self):
        collector = MetricsCollector()
        collector.record_arrival(10)
        collector.record_arrival(20)
        collector.record_commit(committed_txn(1, 10, 110), now=110)
        assert collector.arrivals == 2
        assert collector.commits == 1
        assert collector.response_times == [100]

    def test_warmup_filters_arrivals_and_commits(self):
        collector = MetricsCollector(warmup_clocks=100)
        collector.record_arrival(50)       # during warmup: dropped
        collector.record_arrival(150)
        collector.record_commit(committed_txn(1, 50, 200), now=200)   # arrived in warmup
        collector.record_commit(committed_txn(2, 150, 300), now=300)
        assert collector.arrivals == 1
        assert collector.commits == 1
        assert collector.response_times == [150]

    def test_abort_accounting(self):
        collector = MetricsCollector()
        txn = committed_txn(1, 0, 10)
        txn.note_object_processed(3.5)
        collector.record_abort(txn)
        assert collector.aborts == 1
        assert collector.wasted_objects == 3.5

    def test_label_grouping(self):
        collector = MetricsCollector()
        collector.record_commit(committed_txn(1, 0, 100, label="bat"),
                                now=100)
        collector.record_commit(committed_txn(2, 0, 10, label="short"),
                                now=10)
        collector.record_commit(committed_txn(3, 0, 20, label="short"),
                                now=20)
        means = collector.mean_response_time_by_label()
        assert means == {"bat": 100.0, "short": 15.0}

    def test_unlabelled_not_grouped(self):
        collector = MetricsCollector()
        collector.record_commit(committed_txn(1, 0, 100), now=100)
        assert collector.mean_response_time_by_label() == {}


class TestSummarise:
    def make_summary(self, **kwargs):
        collector = MetricsCollector()
        collector.record_arrival(0)
        collector.record_commit(committed_txn(1, 0, 5000), now=5000)
        defaults = dict(scheduler="X", arrival_rate_tps=0.5,
                        sim_clocks=100_000, dn_utilization=0.4,
                        cn_utilization=0.1, weight_messages=7)
        defaults.update(kwargs)
        return collector.summarise(**defaults)

    def test_throughput_per_second(self):
        metrics = self.make_summary()
        assert metrics.throughput_tps == pytest.approx(1 / 100.0)

    def test_mean_rt_seconds_helper(self):
        metrics = self.make_summary()
        assert metrics.mean_response_time_seconds == 5.0

    def test_no_commits_reports_infinite_rt(self):
        collector = MetricsCollector()
        metrics = collector.summarise(
            scheduler="X", arrival_rate_tps=0.5, sim_clocks=1000,
            dn_utilization=0, cn_utilization=0, weight_messages=0)
        assert metrics.mean_response_time == float("inf")
        assert metrics.throughput_tps == 0

    def test_run_shorter_than_warmup_rejected(self):
        collector = MetricsCollector(warmup_clocks=5000)
        with pytest.raises(ExperimentError):
            collector.summarise(scheduler="X", arrival_rate_tps=0.5,
                                sim_clocks=1000, dn_utilization=0,
                                cn_utilization=0, weight_messages=0)

    def test_as_dict_round_trip(self):
        metrics = self.make_summary()
        data = metrics.as_dict()
        assert data["scheduler"] == "X"
        assert data["commits"] == 1

    def test_scheduler_stats_copied(self):
        stats = {"grants": 5}
        metrics = self.make_summary(scheduler_stats=stats)
        stats["grants"] = 99
        assert metrics.scheduler_stats["grants"] == 5
