"""Unit tests for the throughput-at-RT interpolation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExperimentError
from repro.metrics import interpolate_crossing, throughput_at_response_time
from repro.metrics.interpolate import value_at


class TestInterpolateCrossing:
    def test_exact_sample_hit(self):
        assert interpolate_crossing([0.2, 0.4, 0.6], [10, 70, 200], 70) == 0.4

    def test_linear_between_samples(self):
        # y goes 40 -> 100 between x 0.4 and 0.6; crosses 70 at 0.5.
        crossing = interpolate_crossing([0.2, 0.4, 0.6], [10, 40, 100], 70)
        assert crossing == pytest.approx(0.5)

    def test_never_crossing_returns_none(self):
        assert interpolate_crossing([0.2, 0.4], [10, 20], 70) is None

    def test_above_target_from_start(self):
        assert interpolate_crossing([0.2, 0.4], [90, 200], 70) == 0.2

    def test_unsorted_input_tolerated(self):
        crossing = interpolate_crossing([0.6, 0.2, 0.4], [100, 10, 40], 70)
        assert crossing == pytest.approx(0.5)

    def test_infinite_rt_treated_as_crossing(self):
        crossing = interpolate_crossing([0.2, 0.4, 0.6],
                                        [10, 40, math.inf], 70)
        assert crossing == 0.4  # last finite point before blow-up

    def test_nan_points_skipped(self):
        crossing = interpolate_crossing([0.2, 0.3, 0.4],
                                        [10, math.nan, 100], 70)
        assert crossing == pytest.approx(0.2 + (60 / 90) * 0.2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            interpolate_crossing([1, 2], [1], 5)


class TestValueAt:
    def test_interpolates(self):
        assert value_at([0.0, 1.0], [0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_clamps_below_and_above(self):
        assert value_at([1.0, 2.0], [5.0, 7.0], 0.0) == 5.0
        assert value_at([1.0, 2.0], [5.0, 7.0], 9.0) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            value_at([], [], 1.0)


class TestThroughputAtResponseTime:
    def test_paper_style_reading(self):
        rates = [0.2, 0.4, 0.6, 0.8]
        rts = [10_000, 30_000, 70_000, 200_000]
        tps = [0.2, 0.39, 0.55, 0.5]
        got = throughput_at_response_time(rates, rts, tps, 70_000)
        assert got == pytest.approx(0.55)

    def test_crossing_between_samples_interpolates_tps(self):
        rates = [0.2, 0.6]
        rts = [20_000, 120_000]
        tps = [0.2, 0.6]
        # RT hits 70k halfway -> rate 0.4 -> TPS 0.4.
        got = throughput_at_response_time(rates, rts, tps, 70_000)
        assert got == pytest.approx(0.4)

    def test_never_crossing_returns_best_sampled(self):
        got = throughput_at_response_time([0.2, 0.4], [10, 20], [0.2, 0.4],
                                          70_000)
        assert got == 0.4

    def test_empty_returns_none(self):
        assert throughput_at_response_time([], [], [], 70_000) is None


@given(st.lists(st.tuples(st.floats(0.01, 2), st.floats(0, 1e6)),
                min_size=2, max_size=10, unique_by=lambda t: t[0]),
       st.floats(1, 1e5))
def test_crossing_lies_within_sampled_range(points, target):
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    crossing = interpolate_crossing(xs, ys, target)
    if crossing is not None:
        assert min(xs) <= crossing <= max(xs)
