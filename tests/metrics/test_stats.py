"""Unit tests for batch means and confidence intervals."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExperimentError
from repro.metrics import batch_means, mean_confidence_interval


class TestBatchMeans:
    def test_even_split(self):
        means = batch_means([1, 2, 3, 4, 5, 6], num_batches=3)
        assert means == [1.5, 3.5, 5.5]

    def test_remainder_is_dropped_from_tail_batches(self):
        means = batch_means([1, 2, 3, 4, 5, 6, 7], num_batches=3)
        assert len(means) == 3

    def test_too_few_values_rejected(self):
        with pytest.raises(ExperimentError):
            batch_means([1, 2], num_batches=3)

    def test_zero_batches_rejected(self):
        with pytest.raises(ExperimentError):
            batch_means([1, 2, 3], num_batches=0)


class TestConfidenceInterval:
    def test_constant_values_zero_width(self):
        mean, half = mean_confidence_interval([5.0] * 10)
        assert mean == 5.0
        assert half == 0.0

    def test_known_example(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        mean, half = mean_confidence_interval(values)
        assert mean == 3.0
        # s = sqrt(2.5); half = t(4)=2.776 * sqrt(2.5/5)
        assert half == pytest.approx(2.776 * (2.5 / 5) ** 0.5, rel=1e-3)

    def test_single_value_rejected(self):
        with pytest.raises(ExperimentError):
            mean_confidence_interval([1.0])

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=50))
    def test_mean_inside_interval_and_halfwidth_nonnegative(self, values):
        mean, half = mean_confidence_interval(values)
        assert half >= 0
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    def test_large_sample_uses_normal_quantile(self):
        values = list(range(100))
        mean, half = mean_confidence_interval(values)
        assert mean == pytest.approx(49.5)
        assert half > 0
