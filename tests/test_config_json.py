"""Tests for SimulationParameters JSON round-trip."""

import pytest

from repro import SimulationParameters
from repro.errors import ConfigurationError


def test_round_trip_preserves_every_field():
    original = SimulationParameters(scheduler="K2", arrival_rate_tps=0.7,
                                    sim_clocks=123_456, seed=9,
                                    num_partitions=24, chain_time=33.0)
    again = SimulationParameters.from_json(original.to_json())
    assert again == original


def test_json_is_human_readable():
    text = SimulationParameters().to_json()
    assert '"num_nodes": 8' in text
    assert '"obj_time": 1000.0' in text


def test_unknown_field_rejected():
    with pytest.raises(ConfigurationError, match="unknown parameter"):
        SimulationParameters.from_json('{"warp_speed": 9}')


def test_non_object_rejected():
    with pytest.raises(ConfigurationError):
        SimulationParameters.from_json("[1, 2, 3]")


def test_validation_applies_on_load():
    from repro.errors import ConfigurationError
    bad = SimulationParameters().to_json().replace(
        '"num_nodes": 8', '"num_nodes": 0')
    with pytest.raises(ConfigurationError):
        SimulationParameters.from_json(bad)
