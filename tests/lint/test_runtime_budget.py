"""Lint-runtime budget: the full-repo run must stay interactive.

The flow-sensitive rules added CFG construction plus a fixpoint solve
per function; this pins the whole-tree wall clock so an accidentally
quadratic transfer function (or a non-converging loop eating its
``max_passes`` budget everywhere) fails CI as a perf regression instead
of silently degrading pre-commit.  The bound is ~20x the current cost
(about 0.5s on the CI runners), so it only trips on order-of-magnitude
blowups, not machine noise.
"""

import time
from pathlib import Path

from repro.lint import LintRunner

BUDGET_SECONDS = 10.0


def test_full_repo_lint_stays_under_budget():
    runner = LintRunner()
    start = time.perf_counter()
    violations = runner.check_paths([Path("src")])
    elapsed = time.perf_counter() - start
    assert violations == []  # the acceptance bar: clean with no baseline
    assert elapsed < BUDGET_SECONDS, (
        f"lint run took {elapsed:.2f}s (budget {BUDGET_SECONDS}s): "
        "a flow rule's transfer function has likely regressed")
