"""Each rule RL001-RL005 fires on its bad fixture and stays silent on
the good one.

Fixtures are in-memory sources checked through
:meth:`repro.lint.LintRunner.check_source`, whose explicit ``logical``
path lets a fixture impersonate any production module (rules decide
applicability from the logical path, not the on-disk location).
"""

import textwrap

from repro.lint import LintRunner


def lint(source, logical):
    runner = LintRunner()
    return runner.check_source(textwrap.dedent(source),
                               display="<fixture>", logical=logical)


def rule_ids(violations):
    return [v.rule_id for v in violations]


# -- RL001: determinism -------------------------------------------------------

RL001_BAD = """\
    import random
    import time

    def jitter():
        return time.time()

    def collect():
        out = []
        for tid in {3, 1, 2}:
            out.append(tid)
        return out
"""

RL001_GOOD = """\
    def collect(pending):
        total = sum(x for x in {1, 2, 3})
        out = []
        for tid in sorted({3, 1, 2}):
            out.append(tid + total)
        return out
"""


def test_rl001_fires_on_randomness_clock_and_set_iteration():
    found = rule_ids(lint(RL001_BAD, "repro/core/example.py"))
    assert found.count("RL001") == 3
    assert set(found) == {"RL001"}


def test_rl001_silent_on_good_fixture():
    assert lint(RL001_GOOD, "repro/core/example.py") == []


def test_rl001_set_iteration_only_checked_in_core_and_engine():
    source = """\
        def collect():
            return [tid for tid in {3, 1, 2}]
    """
    assert lint(source, "repro/core/example.py") != []
    assert lint(source, "repro/engine/example.py") != []
    assert lint(source, "repro/workloads/example.py") == []


def test_rl001_rng_module_itself_is_exempt():
    assert lint("import random\n", "repro/engine/rng.py") == []
    assert lint("import random\n", "repro/engine/example.py") != []


# -- RL002: generation-counter coherence --------------------------------------

RL002_BAD = """\
    class WTPG:
        def __init__(self):
            self._source = {}
            self._generation = 0

        def add_transaction(self, tid, weight):
            self._source[tid] = weight

        def resolve(self, tid):
            self._succ[tid].add(tid)
            if tid > 0:
                self._generation += 1
            return tid
"""

RL002_GOOD = """\
    class WTPG:
        def __init__(self):
            self._source = {}
            self._generation = 0

        def add_transaction(self, tid, weight):
            self._source[tid] = weight
            self._generation += 1

        def remove_transaction(self, tid):
            if tid not in self._source:
                raise KeyError(tid)
            del self._source[tid]
            self._note_edge_weight(tid)

        def peek(self, tid):
            return self._source[tid]
"""


def test_rl002_fires_on_unbumped_mutations():
    violations = lint(RL002_BAD, "repro/core/wtpg.py")
    assert rule_ids(violations) == ["RL002", "RL002"]
    # One open mutation reaches the end of add_transaction; the other
    # escapes through the bump-free else path into the return.
    assert violations[0].line == 7
    assert "add_transaction" in violations[0].message
    assert "resolve" in violations[1].message


def test_rl002_silent_when_every_path_bumps_or_raises():
    assert lint(RL002_GOOD, "repro/core/wtpg.py") == []


def test_rl002_only_applies_to_the_real_wtpg_module():
    assert lint(RL002_BAD, "repro/core/other.py") == []


# -- RL003: encapsulation -----------------------------------------------------

RL003_BAD = """\
    from repro.core.wtpg import _pair

    def peek(wtpg):
        return wtpg._cp_dist
"""

RL003_GOOD = """\
    def peek(wtpg):
        return wtpg.critical_path_length()
"""


def test_rl003_fires_on_private_access_and_import():
    found = rule_ids(lint(RL003_BAD, "repro/core/schedulers/example.py"))
    assert found == ["RL003", "RL003"]


def test_rl003_silent_on_public_api():
    assert lint(RL003_GOOD, "repro/core/schedulers/example.py") == []


def test_rl003_estimator_allowlist():
    allowed = """\
        from repro.core.wtpg import WTPG, _pair

        def read(wtpg):
            return wtpg._cp_dist, wtpg._succ, wtpg._pred
    """
    assert lint(allowed, "repro/core/estimator.py") == []
    # The allowlist is attribute-exact: anything beyond it still fires.
    beyond = """\
        def read(wtpg):
            return wtpg._unresolved
    """
    assert rule_ids(lint(beyond, "repro/core/estimator.py")) == ["RL003"]


# -- RL004: float equality ----------------------------------------------------

RL004_BAD = """\
    def decide(e_q, e_rival, peak, best_peak):
        if e_q == e_rival:
            return "tie"
        return peak != best_peak
"""

RL004_GOOD = """\
    def decide(e_q, e_rival, count, mode):
        if e_q == INFINITE_CONTENTION:
            return False
        if count == 3 and mode == "overlay":
            return True
        return e_q <= e_rival
"""


def test_rl004_fires_on_float_equality():
    found = rule_ids(lint(RL004_BAD, "repro/core/schedulers/example.py"))
    assert found == ["RL004", "RL004"]


def test_rl004_allows_sentinel_ordering_and_nonfloat_equality():
    assert lint(RL004_GOOD, "repro/core/schedulers/example.py") == []


def test_rl004_scoped_to_schedulers():
    assert lint(RL004_BAD, "repro/core/estimator.py") == []


# -- RL005: exception hygiene -------------------------------------------------

RL005_BAD = """\
    def run(task):
        try:
            task()
        except:
            pass
        try:
            task()
        except Exception:
            pass
"""

RL005_GOOD = """\
    def run(task, log):
        try:
            task()
        except ValueError:
            return None
        try:
            task()
        except Exception as exc:
            log(exc)
            raise
"""


def test_rl005_fires_on_bare_and_blind_excepts():
    found = rule_ids(lint(RL005_BAD, "repro/machine/example.py"))
    assert found == ["RL005", "RL005"]


def test_rl005_silent_on_narrow_or_reraising_handlers():
    assert lint(RL005_GOOD, "repro/machine/example.py") == []
