"""Differential tests: the CFG-based RL002 against the legacy walker.

The bespoke path-sensitive statement walker RL002 shipped with before
the dataflow migration is preserved here verbatim (modulo emitting plain
tuples instead of Violations) as the reference implementation.  On the
fixture corpus and the real ``wtpg.py`` the two must agree finding for
finding; the cases where they *diverge* are pinned as separate tests,
each one a documented precision improvement of the CFG version (the
legacy walker treated ``break``/``continue`` as straight-line
statements, so it hallucinated fall-through into code a jump skips).
"""

import ast
import re
import textwrap
from pathlib import Path

from repro.lint import LintRunner
from repro.lint.rules import _is_bump, _statement_mutations

WTPG_SOURCE = Path("src/repro/core/wtpg.py").read_text()

_TERMINATED = "terminated"


# -- the legacy implementation, verbatim control flow -------------------------

def legacy_rl002(source):
    """(line, col, message) findings of the pre-migration RL002 walker."""
    tree = ast.parse(source)
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or node.name != "WTPG":
            continue
        for item in node.body:
            if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name != "__init__"):
                _legacy_check_method(item, findings)
    return sorted(findings)


def _legacy_check_method(func, findings):
    violations = []
    open_after = _legacy_scan(func.name, func.body, [], violations)
    if open_after is not _TERMINATED:
        for stmt, attr in open_after:
            violations.append((
                stmt.lineno, stmt.col_offset,
                f"WTPG.{func.name} mutates self.{attr} on a path that "
                "never bumps the generation counter "
                "(self._generation / self._structure_gen or an "
                "invalidation helper)"))
    findings.extend(violations)


def _legacy_scan(method, body, open_muts, violations):
    current = list(open_muts)
    for stmt in body:
        if _is_bump(stmt):
            current = []
            continue
        current.extend(_statement_mutations(stmt))
        if isinstance(stmt, ast.Return):
            for mutation, attr in current:
                violations.append((
                    stmt.lineno, stmt.col_offset,
                    f"WTPG.{method} returns after mutating self.{attr} "
                    "without bumping the generation counter"))
            return _TERMINATED
        if isinstance(stmt, ast.Raise):
            return _TERMINATED
        if isinstance(stmt, ast.If):
            then_open = _legacy_scan(method, stmt.body, current, violations)
            else_open = _legacy_scan(method, stmt.orelse, current, violations)
            if then_open is _TERMINATED and else_open is _TERMINATED:
                return _TERMINATED
            merged = []
            for branch in (then_open, else_open):
                if branch is not _TERMINATED:
                    for entry in branch:
                        if entry not in merged:
                            merged.append(entry)
            current = merged
        elif isinstance(stmt, (ast.For, ast.While)):
            loop_open = _legacy_scan(method, stmt.body, current, violations)
            if loop_open is not _TERMINATED:
                for entry in loop_open:
                    if entry not in current:
                        current.append(entry)
            else_open = _legacy_scan(method, stmt.orelse, current, violations)
            if else_open is not _TERMINATED:
                current = else_open
        elif isinstance(stmt, ast.With):
            with_open = _legacy_scan(method, stmt.body, current, violations)
            if with_open is _TERMINATED:
                return _TERMINATED
            current = with_open
        elif isinstance(stmt, ast.Try):
            try_open = _legacy_scan(method, stmt.body, current, violations)
            merged = list(current if try_open is _TERMINATED else try_open)
            for handler in stmt.handlers:
                handler_open = _legacy_scan(method, handler.body, merged,
                                            violations)
                if handler_open is not _TERMINATED:
                    for entry in handler_open:
                        if entry not in merged:
                            merged.append(entry)
            final_open = _legacy_scan(method, stmt.finalbody, merged,
                                      violations)
            current = (merged if final_open is _TERMINATED else final_open)
    return current


# -- harness -------------------------------------------------------------------

def migrated_rl002(source):
    runner = LintRunner()
    violations = runner.check_source(source, display="<fixture>",
                                     logical="repro/core/wtpg.py")
    return sorted((v.line, v.col, v.message) for v in violations
                  if v.rule_id == "RL002")


def assert_agreement(source):
    assert migrated_rl002(source) == legacy_rl002(source)


# -- the agreement corpus ------------------------------------------------------

RL002_BAD = """\
class WTPG:
    def __init__(self):
        self._source = {}
        self._generation = 0

    def add_transaction(self, tid, weight):
        self._source[tid] = weight

    def resolve(self, tid):
        self._succ[tid].add(tid)
        if tid > 0:
            self._generation += 1
        return tid
"""

RL002_GOOD = """\
class WTPG:
    def __init__(self):
        self._source = {}
        self._generation = 0

    def add_transaction(self, tid, weight):
        self._source[tid] = weight
        self._generation += 1

    def remove_transaction(self, tid):
        if tid not in self._source:
            raise KeyError(tid)
        del self._source[tid]
        self._note_edge_weight(tid)

    def peek(self, tid):
        return self._source[tid]
"""

CONTROL_FLOW_ZOO = """\
class WTPG:
    def loops(self, tids):
        for tid in tids:
            self._succ[tid].add(tid)
        self._generation += 1

    def loop_leak(self, tids):
        while tids:
            self._pairs[tids.pop()] = 1.0

    def try_paths(self, tid):
        try:
            self._source[tid] = 1.0
        except KeyError:
            self._generation += 1
        self._invalidate_caches()

    def with_return(self, tid, guard):
        with guard:
            self._sink[tid] = 2.0
            return tid

    def nested(self, tid, flag):
        if flag:
            if tid:
                self._pred[tid] = ()
            else:
                self._generation += 1
                return tid
        self._structure_gen += 1
"""


def test_fixture_corpus_agreement():
    for source in (RL002_BAD, RL002_GOOD, CONTROL_FLOW_ZOO):
        assert_agreement(source)


def test_bad_fixture_agrees_and_finds_both_leaks():
    found = migrated_rl002(RL002_BAD)
    assert found == legacy_rl002(RL002_BAD)
    assert len(found) == 2


def test_real_wtpg_agreement_clean():
    assert legacy_rl002(WTPG_SOURCE) == []
    assert migrated_rl002(WTPG_SOURCE) == []


def test_real_wtpg_with_bumps_stripped_agrees():
    """Neutralising every direct generation bump must surface the same
    mutation sites through both implementations — the strongest
    end-to-end agreement check available without inventing a second
    WTPG."""
    stripped = re.sub(r"^(\s*)self\._generation \+= 1$", r"\1pass",
                      WTPG_SOURCE, flags=re.MULTILINE)
    assert stripped != WTPG_SOURCE
    legacy = legacy_rl002(stripped)
    assert legacy != []  # the corpus actually exercises the rule
    assert migrated_rl002(stripped) == legacy


# -- documented divergences: the CFG version is strictly more precise ----------

def test_divergence_continue_skips_the_bump():
    """``continue`` jumps back to the loop header, skipping the bump
    after the ``if`` — a real leak.  The legacy walker modelled
    ``continue`` as a straight-line statement and assumed the bump still
    ran; the CFG version routes the edge correctly and reports."""
    source = textwrap.dedent("""\
        class WTPG:
            def poke(self, flags):
                for flag in flags:
                    if flag:
                        self._unresolved.add(flag)
                        continue
                    self._generation += 1
    """)
    assert legacy_rl002(source) == []  # the legacy false negative
    found = migrated_rl002(source)
    assert len(found) == 1
    assert "_unresolved" in found[0][2]


def test_divergence_break_bypasses_the_loop_else():
    """``break`` exits past the ``else`` clause where the bump lives;
    legacy scanned the else as if every path ran it."""
    source = textwrap.dedent("""\
        class WTPG:
            def poke(self, items):
                while items:
                    self._succ[0].add(1)
                    break
                else:
                    self._generation += 1
    """)
    assert legacy_rl002(source) == []  # the legacy false negative
    found = migrated_rl002(source)
    assert len(found) == 1
    assert "_succ" in found[0][2]
