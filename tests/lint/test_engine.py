"""Runner plumbing: registry, JSON schema, CLI exit codes, repo cleanliness."""

import json
from pathlib import Path

import pytest

from repro.lint import LintRunner, all_rules
from repro.lint.cli import main
from repro.lint.engine import logical_path_of, render_json

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SOURCE = (
    "def run(task):\n"
    "    try:\n"
    "        task()\n"
    "    except:\n"
    "        pass\n"
)


def test_registry_holds_the_sixteen_documented_rules():
    assert [rule.rule_id for rule in all_rules()] == [
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
        "RL007", "RL008", "RL009", "RL010", "RL011", "RL012",
        "RL013", "RL014", "RL015", "RL016"]
    assert all(rule.summary for rule in all_rules())


def test_syntax_error_is_reported_as_rl000():
    violations = LintRunner().check_source(
        "def broken(:\n", display="<fixture>", logical="repro/x.py")
    assert [v.rule_id for v in violations] == ["RL000"]
    assert "does not parse" in violations[0].message


def test_logical_path_of_maps_into_the_package():
    path = REPO_ROOT / "src" / "repro" / "core" / "wtpg.py"
    assert logical_path_of(path) == "repro/core/wtpg.py"


def test_json_report_schema():
    runner = LintRunner()
    violations = runner.check_source(BAD_SOURCE, display="bad.py",
                                     logical="repro/machine/bad.py")
    payload = json.loads(render_json(violations, 1, runner.rules))
    assert payload["tool"] == "repro-lint"
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    assert payload["rules"] == ["RL001", "RL002", "RL003", "RL004",
                                "RL005", "RL006", "RL007", "RL008",
                                "RL009", "RL010", "RL011", "RL012",
                                "RL013", "RL014", "RL015", "RL016"]
    assert len(payload["violations"]) == 1
    entry = payload["violations"][0]
    assert set(entry) == {"rule", "file", "line", "col", "message"}
    assert entry["rule"] == "RL005"
    assert entry["file"] == "bad.py"
    assert entry["line"] == 4


def test_repo_source_tree_is_clean():
    """The acceptance criterion: repro-lint src/ finds nothing."""
    violations, runner = [], LintRunner()
    violations = runner.check_paths([REPO_ROOT / "src"])
    assert violations == [], "\n".join(v.render() for v in violations)
    assert runner.files_checked > 50


# -- CLI ----------------------------------------------------------------------


def test_cli_exit_zero_and_text_report_on_clean_tree(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(clean)]) == 0
    out = capsys.readouterr().out
    assert "repro-lint: clean (1 file)" in out


def test_cli_exit_one_on_violations(tmp_path, capsys):
    bad = tmp_path / "repro" / "machine"
    bad.mkdir(parents=True)
    bad_file = bad / "bad.py"
    bad_file.write_text(BAD_SOURCE)
    assert main([str(bad_file)]) == 1
    out = capsys.readouterr().out
    assert "RL005" in out


def test_cli_json_flag(tmp_path, capsys):
    bad = tmp_path / "repro" / "machine"
    bad.mkdir(parents=True)
    (bad / "bad.py").write_text(BAD_SOURCE)
    assert main(["--json", str(bad / "bad.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "repro-lint"
    assert [v["rule"] for v in payload["violations"]] == ["RL005"]


def test_cli_exit_two_on_missing_path(capsys):
    assert main(["definitely-not-a-real-path"]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
                    "RL007", "RL008", "RL009", "RL010", "RL011", "RL012",
                    "RL013", "RL014", "RL015", "RL016"):
        assert rule_id in out


def test_cli_skips_pycache_directories(tmp_path, capsys):
    tree = tmp_path / "pkg"
    cache = tree / "__pycache__"
    cache.mkdir(parents=True)
    (tree / "ok.py").write_text("x = 1\n")
    (cache / "bad.py").write_text(BAD_SOURCE)
    assert main([str(tree)]) == 0


def test_cli_select_runs_only_named_rules(tmp_path, capsys):
    bad = tmp_path / "repro" / "machine"
    bad.mkdir(parents=True)
    (bad / "bad.py").write_text(BAD_SOURCE)
    assert main(["--select", "RL001", str(bad / "bad.py")]) == 0
    capsys.readouterr()
    assert main(["--select", "RL005,RL009", str(bad / "bad.py")]) == 1
    assert "RL005" in capsys.readouterr().out


def test_cli_ignore_skips_named_rules(tmp_path, capsys):
    bad = tmp_path / "repro" / "machine"
    bad.mkdir(parents=True)
    (bad / "bad.py").write_text(BAD_SOURCE)
    assert main(["--ignore", "RL005", str(bad / "bad.py")]) == 0


def test_cli_rule_filters_reject_unknown_ids(capsys):
    assert main(["--select", "RL999", "."]) == 2
    assert "unknown rule" in capsys.readouterr().err
    assert main(["--ignore", "nonsense", "."]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_jobs_rejects_nonpositive(capsys):
    assert main(["--jobs", "0", "."]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_parallel_run_matches_serial_output(tmp_path):
    """--jobs output is byte-identical to the serial run."""
    from repro.lint.engine import lint_paths

    pkg = tmp_path / "repro" / "machine"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD_SOURCE)
    (pkg / "worse.py").write_text(BAD_SOURCE + BAD_SOURCE.replace(
        "def run", "def rerun"))
    (pkg / "clean.py").write_text("x = 1\n")
    (pkg / "broken.py").write_text("def broken(:\n")
    serial, serial_runner = lint_paths([tmp_path])
    parallel, parallel_runner = lint_paths([tmp_path], jobs=3)
    assert parallel == serial
    assert parallel_runner.files_checked == serial_runner.files_checked
    assert [v.rule_id for v in serial] == ["RL005", "RL000", "RL005",
                                           "RL005"]


def test_rl002_has_teeth_against_the_real_wtpg():
    """Strip the generation bump from the real resolve() and RL002 fires.

    This proves the rule analyses the production module (not a toy
    grammar): removing invariant 7's write barrier is caught statically.
    """
    path = REPO_ROOT / "src" / "repro" / "core" / "wtpg.py"
    source = path.read_text(encoding="utf-8")
    stripped = source.replace("self._generation += 1", "pass").replace(
        "self._structure_gen += 1", "pass")
    assert stripped != source, "expected generation bumps in wtpg.py"
    violations = LintRunner().check_source(
        stripped, display=str(path), logical="repro/core/wtpg.py")
    rl002 = [v for v in violations if v.rule_id == "RL002"]
    assert rl002, "RL002 must catch stripped generation bumps"


def test_rl007_has_teeth_against_the_real_wtpg():
    """Re-reversing the critical-path guard makes RL007 fire.

    Regression pin for the wtpg fix this rule surfaced:
    ``critical_path_length`` used to read ``self._cp_dist`` *before*
    comparing ``self._cp_gen`` — harmless only by accident of how the
    value was used afterwards, and exactly the stale-read shape
    invariant 7 forbids.  Reintroducing the old shape into the real
    module source must be caught statically.
    """
    path = REPO_ROOT / "src" / "repro" / "core" / "wtpg.py"
    source = path.read_text(encoding="utf-8")
    fixed = ("        if self._cp_gen == self._structure_gen "
             "and self._cp_dist is not None:\n"
             "            dist = self._cp_dist\n")
    reverted = ("        dist = self._cp_dist\n"
                "        if dist is not None "
                "and self._cp_gen == self._structure_gen:\n")
    assert fixed in source, "expected the guarded-read form in wtpg.py"
    violations = LintRunner().check_source(
        source.replace(fixed, reverted), display=str(path),
        logical="repro/core/wtpg.py")
    rl007 = [v for v in violations if v.rule_id == "RL007"]
    assert rl007, "RL007 must catch the read-before-guard shape"
    assert "_cp_dist" in rl007[0].message
