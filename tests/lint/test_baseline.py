"""Fingerprint and baseline-workflow tests for repro.lint.baseline."""

import json
from pathlib import Path

import pytest

from repro.lint.baseline import (BASELINE_VERSION, filter_new, fingerprint,
                                 fingerprints_for, load_baseline,
                                 write_baseline)
from repro.lint.model import Violation


def violation_in(path, line, rule_id="RL006", message="leak"):
    return Violation(rule_id, str(path), line, 4, message)


def write_source(tmp_path, name, lines):
    path = tmp_path / name
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def test_fingerprint_is_stable_and_input_sensitive():
    base = fingerprint("RL006", "src/a.py", "x.register()", 0)
    assert base == fingerprint("RL006", "src/a.py", "x.register()", 0)
    assert base != fingerprint("RL007", "src/a.py", "x.register()", 0)
    assert base != fingerprint("RL006", "src/b.py", "x.register()", 0)
    assert base != fingerprint("RL006", "src/a.py", "x.register()", 1)


def test_fingerprints_survive_line_drift(tmp_path):
    """Inserting lines above a finding must not change its fingerprint —
    the hash covers the line *text*, never the number."""
    source = write_source(tmp_path, "mod.py",
                          ["def f():", "    t.register()"])
    before = fingerprints_for([violation_in(source, 2)], root=tmp_path)

    write_source(tmp_path, "mod.py",
                 ["# a new comment", "", "def f():", "    t.register()"])
    after = fingerprints_for([violation_in(source, 4)], root=tmp_path)
    assert before == after


def test_fingerprints_change_when_the_line_itself_changes(tmp_path):
    source = write_source(tmp_path, "mod.py", ["t.register()"])
    before = fingerprints_for([violation_in(source, 1)], root=tmp_path)
    write_source(tmp_path, "mod.py", ["t.register(txn)"])
    after = fingerprints_for([violation_in(source, 1)], root=tmp_path)
    assert before != after


def test_repeated_identical_lines_get_distinct_occurrence_indices(tmp_path):
    source = write_source(tmp_path, "mod.py",
                          ["t.register()", "t.register()"])
    prints = fingerprints_for(
        [violation_in(source, 1), violation_in(source, 2)], root=tmp_path)
    assert len(set(prints)) == 2


def test_write_load_round_trip_and_filtering(tmp_path):
    source = write_source(tmp_path, "mod.py",
                          ["t.register()", "t.request()"])
    old = violation_in(source, 1)
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, [old], root=tmp_path)

    baseline = load_baseline(baseline_path)
    assert len(baseline) == 1

    new = violation_in(source, 2, message="another leak")
    fresh, matched = filter_new([old, new], baseline, root=tmp_path)
    assert matched == 1
    assert fresh == [new]


def test_empty_baseline_grandfathers_nothing(tmp_path):
    source = write_source(tmp_path, "mod.py", ["t.register()"])
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, [], root=tmp_path)
    fresh, matched = filter_new([violation_in(source, 1)],
                                load_baseline(baseline_path), root=tmp_path)
    assert matched == 0
    assert len(fresh) == 1


def test_load_rejects_foreign_and_versioned_files(tmp_path):
    wrong_tool = tmp_path / "other.json"
    wrong_tool.write_text(json.dumps({"tool": "other", "version": 1,
                                      "fingerprints": []}))
    with pytest.raises(ValueError, match="not a repro-lint baseline"):
        load_baseline(wrong_tool)

    wrong_version = tmp_path / "future.json"
    wrong_version.write_text(json.dumps(
        {"tool": "repro-lint", "version": BASELINE_VERSION + 1,
         "fingerprints": []}))
    with pytest.raises(ValueError, match="unsupported baseline version"):
        load_baseline(wrong_version)


def test_committed_baseline_is_empty():
    """The acceptance bar of the flow-rule sweep: everything the new
    rules surfaced was fixed, nothing was grandfathered."""
    committed = load_baseline(Path("lint-baseline.json"))
    assert committed == set()
