"""Tests for the declarative typestate layer (RL013–RL016).

Three tiers, mirroring the framework's own layering:

* golden framework tests drive a minimal protocol spec straight through
  :func:`check_protocol`, pinning the evaluator's semantics — creator
  narrowing, error-state cascade suppression, the must-violation policy
  at joins, opaque rebinding, aliasing, escape semantics, and the
  interprocedural transition-relation lift;
* per-rule fixture tests run the shipped specs over small sources that
  impersonate in-scope modules (the same convention as the RL009–RL012
  tests);
* teeth tests strip the committed suppressions from (or re-seed the
  historical bug into) the *real* sources to prove each rule fires on
  production code shapes, plus a clean sweep over the real scopes.
"""

import ast
import re
import textwrap
from dataclasses import replace
from pathlib import Path

from repro.lint import LintRunner
from repro.lint.model import FileContext
from repro.lint.project import Project
from repro.lint.typestate import (ARG, CALL, WRITE, Creator, Operation,
                                  ProtocolSpec, _t, check_protocol,
                                  render_table, transition_relation)

REPO = Path(__file__).resolve().parents[2]


# -- golden framework tests on a minimal spec ----------------------------------

MINI = ProtocolSpec(
    name="mini-file",
    states=("open", "closed"),
    error_state="broken",
    creators=(Creator("open_file", "open"),),
    operations=(
        Operation(CALL, "read", _t(open=("open",))),
        Operation(CALL, "close", _t(open=("closed",))),
        Operation(WRITE, "raw", {}),
    ),
    tracked_types=frozenset({"Handle"}),
)


def analyze(spec, source, logical="repro/core/mod.py"):
    src = textwrap.dedent(source)
    ctx = FileContext(display="<golden>", logical=logical, source=src,
                      tree=ast.parse(src))
    return check_protocol(spec, Project([ctx]), ctx)


def project_of(source, logical="repro/core/mod.py"):
    src = textwrap.dedent(source)
    ctx = FileContext(display="<golden>", logical=logical, source=src,
                      tree=ast.parse(src))
    return Project([ctx]), ctx


def test_use_after_close_flags():
    findings = analyze(MINI, """\
        def run():
            f = open_file()
            f.close()
            f.read()
    """)
    assert len(findings) == 1
    line, _col, message = findings[0]
    assert line == 4
    assert ".read()" in message and "closed" in message


def test_error_state_reports_once_not_a_cascade():
    findings = analyze(MINI, """\
        def run():
            f = open_file()
            f.close()
            f.read()
            f.read()
            f.read()
    """)
    # The first illegal read pushes f into the error state; the error
    # state is silent, so the two later reads do not pile on.
    assert [line for line, _c, _m in findings] == [4]


def test_forbidden_write_flags_from_any_state():
    findings = analyze(MINI, """\
        def run():
            f = open_file()
            f.raw = b""
    """)
    assert len(findings) == 1
    assert "forbidden" in findings[0][2]


def test_annotated_param_starts_in_every_state():
    # Nothing is known about the caller, so one read is fine...
    assert analyze(MINI, """\
        def run(f: Handle):
            f.read()
    """) == []
    # ...but after a close the state is known, and a second close flags.
    findings = analyze(MINI, """\
        def run(f: Handle):
            f.close()
            f.close()
    """)
    assert len(findings) == 1
    assert ".close()" in findings[0][2]


def test_must_policy_is_silent_when_one_join_arm_is_legal():
    assert analyze(MINI, """\
        def run(cond):
            f = open_file()
            if cond:
                f.close()
            f.read()
    """) == []


def test_must_policy_flags_when_every_join_arm_is_illegal():
    findings = analyze(MINI, """\
        def run(cond):
            f = open_file()
            if cond:
                f.close()
            else:
                f.close()
            f.read()
    """)
    assert len(findings) == 1
    assert findings[0][0] == 7


def test_opaque_rebinding_resets_to_all_states():
    assert analyze(MINI, """\
        def run():
            f = open_file()
            f.close()
            f = reopen_somehow()
            f.read()
    """) == []


def test_alias_copies_the_source_state():
    assert analyze(MINI, """\
        def run():
            f = open_file()
            g = f
            g.read()
    """) == []
    findings = analyze(MINI, """\
        def run():
            f = open_file()
            f.close()
            g = f
            g.read()
    """)
    assert len(findings) == 1
    assert "'g'" in findings[0][2]


def test_del_resets_tracking():
    assert analyze(MINI, """\
        def run():
            f = open_file()
            f.close()
            del f
            f.read()
    """) == []


def test_escape_semantics_ignore_vs_reset():
    source = """\
        def run():
            f = open_file()
            f.close()
            mystery(f)
            f.read()
    """
    # ignore: unknown calls cannot advance the object, so the read is
    # still a use-after-close.
    assert len(analyze(MINI, source)) == 1
    # reset: unknown code may have reopened it.
    assert analyze(replace(MINI, on_escape="reset"), source) == []


def test_tuple_unpack_creator_narrows_the_named_element():
    spec = replace(MINI, creators=(Creator("load", "open", result_index=1),))
    assert analyze(spec, """\
        def run():
            meta, f = load()
            f.read()
            f.close()
    """) == []
    findings = analyze(spec, """\
        def run():
            meta, f = load()
            f.close()
            f.close()
    """)
    assert len(findings) == 1


def test_interprocedural_relation_advances_caller_state():
    findings = analyze(MINI, """\
        def shutdown(h):
            h.close()

        def run():
            f = open_file()
            shutdown(f)
            f.read()
    """)
    # shutdown() contributes open -> {closed}; the read then flags.
    assert len(findings) == 1
    assert findings[0][0] == 7


def test_interprocedural_call_site_must_violation():
    findings = analyze(MINI, """\
        def finish(h):
            h.close()

        def run():
            f = open_file()
            f.close()
            finish(f)
    """)
    assert len(findings) == 1
    assert "finish" in findings[0][2]
    assert "cannot complete legally" in findings[0][2]


def test_transition_relation_values_and_memoisation():
    project, ctx = project_of("""\
        def shutdown(h):
            h.close()
    """)
    fid = project.functions_of(ctx.logical)[0].fid
    relation = transition_relation(project, MINI, fid, "h")
    assert relation == {"open": frozenset({"closed"}),
                       "closed": frozenset({"broken"})}
    assert transition_relation(project, MINI, fid, "h") is relation
    assert transition_relation(project, MINI, fid, "nope") is None


def test_render_table_lists_states_and_transitions():
    table = render_table(MINI)
    assert "protocol: mini-file" in table
    assert "states: open, closed (+ broken)" in table
    assert "creator: open_file(...) -> open" in table
    assert "(forbidden)" in table
    lines = table.splitlines()
    assert any(line.startswith(".close()") and "open" in line
               and "closed" in line for line in lines)


# -- per-rule fixtures ---------------------------------------------------------

def lint(source, logical):
    runner = LintRunner()
    return runner.check_source(textwrap.dedent(source),
                               display="<fixture>", logical=logical)


def of_rule(violations, rule_id):
    return [v for v in violations if v.rule_id == rule_id]


def test_rl013_flags_commit_after_abort():
    violations = lint("""\
        def drive(sched, txn: TransactionRuntime, now):
            sched.abort_transaction(txn, now)
            sched.commit(txn, now)
    """, "repro/core/schedulers/sched.py")
    rl013 = of_rule(violations, "RL013")
    assert len(rl013) == 1
    assert "commit" in rl013[0].message
    assert "no commit after a doom or abort" in rl013[0].message


def test_rl013_flags_double_abort_and_bad_restart():
    violations = lint("""\
        def stop(sched, txn: TransactionRuntime, now):
            sched.abort_transaction(txn, now)
            sched.abort_transaction(txn, now)

        def finish(sched, txn: TransactionRuntime, now):
            sched.commit(txn, now)
            txn.reset_for_retry()
    """, "repro/core/schedulers/sched.py")
    rl013 = of_rule(violations, "RL013")
    assert len(rl013) == 2
    assert "no double abort" in rl013[0].message
    assert "restart only from aborted" in rl013[1].message


def test_rl013_clean_on_the_full_lifecycle():
    violations = lint("""\
        def run(sched, spec, now):
            txn = TransactionRuntime(spec)
            sched.admit(txn, now)
            txn.start_time = now
            sched.request_lock(txn, now)
            txn.advance_step()
            sched.commit(txn, now)
    """, "repro/core/schedulers/sched.py")
    assert of_rule(violations, "RL013") == []


def test_rl013_out_of_scope_is_silent():
    violations = lint("""\
        def drive(sched, txn: TransactionRuntime, now):
            sched.abort_transaction(txn, now)
            sched.commit(txn, now)
    """, "repro/metrics/collector.py")
    assert of_rule(violations, "RL013") == []


def test_rl014_flags_double_trigger_and_value_write():
    violations = lint("""\
        def run(env):
            e = Event(env)
            e.succeed()
            e.fail()

        def poke(env):
            e = Event(env)
            e._value = 1
    """, "repro/engine/helpers.py")
    rl014 = of_rule(violations, "RL014")
    assert len(rl014) == 2
    assert "at most once" in rl014[0].message
    assert "_value" in rl014[1].message


def test_rl014_defuse_and_unschedule_need_the_right_state():
    violations = lint("""\
        def good(env):
            e = Event(env)
            env.unschedule(e)
            t = Timeout(env, 3)
            t.fail()
            t._defused = True

        def bad(env):
            e = Event(env)
            e._defused = True
            t = Timeout(env, 3)
            t.succeed()
            env.unschedule(t)
    """, "repro/engine/helpers.py")
    rl014 = of_rule(violations, "RL014")
    assert len(rl014) == 2
    assert "_defused" in rl014[0].message
    assert "unschedule" in rl014[1].message


def test_rl015_flags_touch_after_excision():
    violations = lint("""\
        def drop(wtpg, tid):
            wtpg.remove_transaction(tid)
            wtpg.decrement_source(tid)
    """, "repro/core/wtpg.py")
    rl015 = of_rule(violations, "RL015")
    assert len(rl015) == 1
    assert "decrement_source" in rl015[0].message
    assert "excised" in rl015[0].message


def test_rl015_flags_double_insertion():
    violations = lint("""\
        def insert(wtpg, tid, weight):
            wtpg.add_transaction(tid, weight)
            wtpg.add_transaction(tid, weight)
    """, "repro/core/wtpg.py")
    rl015 = of_rule(violations, "RL015")
    assert len(rl015) == 1
    assert "exactly once" in rl015[0].message


def test_rl015_clean_on_the_full_node_life():
    violations = lint("""\
        def life(wtpg, tid, other, weight):
            wtpg.add_transaction(tid, weight)
            wtpg.ensure_pair(tid, other)
            wtpg.resolve(other, tid)
            wtpg.decrement_source(tid)
            wtpg.remove_transaction(tid)
    """, "repro/core/wtpg.py")
    assert of_rule(violations, "RL015") == []


def test_rl016_flags_merge_without_validation():
    violations = lint("""\
        def resume(done, path):
            header, recorded = read_checkpoint(path)
            done.update(recorded)
    """, "repro/experiments/parallel.py")
    rl016 = of_rule(violations, "RL016")
    assert len(rl016) == 1
    assert "update" in rl016[0].message
    assert "validated" in rl016[0].message


def test_rl016_flags_double_merge_but_not_the_valid_sequence():
    good = lint("""\
        def resume(done, path, fingerprint, expected):
            header, recorded = read_checkpoint(path)
            _validate_checkpoint(header, recorded, fingerprint,
                                 expected, path)
            done.update(recorded)
    """, "repro/experiments/parallel.py")
    assert of_rule(good, "RL016") == []
    bad = lint("""\
        def resume(done, path, fingerprint, expected):
            header, recorded = read_checkpoint(path)
            _validate_checkpoint(header, recorded, fingerprint,
                                 expected, path)
            done.update(recorded)
            done.update(recorded)
    """, "repro/experiments/parallel.py")
    rl016 = of_rule(bad, "RL016")
    assert len(rl016) == 1
    assert "exactly once" in rl016[0].message


# -- teeth: the rules fire on (re-broken) real sources -------------------------

def _without_suppressions(path):
    source = path.read_text(encoding="utf-8")
    return re.sub(r"#\s*repro-lint:[^\n]*", "", source)


def test_rl013_teeth_on_real_control_node():
    source = _without_suppressions(
        REPO / "src/repro/machine/control_node.py")
    violations = LintRunner().check_source(
        source, display="<broken control_node>",
        logical="repro/machine/control_node.py")
    rl013 = of_rule(violations, "RL013")
    # The admission-rejection retry re-arms a BAT that never ran; with
    # its justified suppression stripped, the "restart only from
    # aborted" transition must flag exactly that call.
    assert len(rl013) == 1
    assert "reset_for_retry" in rl013[0].message


def test_rl014_teeth_on_real_engine_core():
    source = _without_suppressions(REPO / "src/repro/engine/core.py")
    violations = LintRunner().check_source(
        source, display="<broken engine core>",
        logical="repro/engine/core.py")
    rl014 = of_rule(violations, "RL014")
    # interrupt() and the timeout_until() heap fast path both construct
    # born-triggered events by writing _value directly; stripped of
    # their justifications, both writes must flag.
    assert len(rl014) == 2
    assert all("_value" in v.message for v in rl014)


def test_rl015_teeth_on_reseeded_builder_bug():
    source = (REPO / "src/repro/core/builder.py").read_text(
        encoding="utf-8")
    broken = source.replace(
        "    wtpg.remove_transaction(tid)\n    table.unregister(tid)",
        "    wtpg.remove_transaction(tid)\n"
        "    wtpg.decrement_source(tid)\n"
        "    table.unregister(tid)")
    assert broken != source, "builder.remove_transaction changed shape"
    violations = LintRunner().check_source(
        broken, display="<broken builder>",
        logical="repro/core/builder.py")
    rl015 = of_rule(violations, "RL015")
    # The paper's WA-message race: a weight adjustment applied to a
    # node that was just excised.
    assert len(rl015) == 1
    assert "decrement_source" in rl015[0].message


def test_rl016_teeth_on_unvalidated_resume():
    source = (REPO / "src/repro/experiments/parallel.py").read_text(
        encoding="utf-8")
    broken = re.sub(
        r"_validate_checkpoint\(header, recorded, fingerprint,"
        r"\s*\n\s*expected, path\)",
        "pass", source)
    assert broken != source, "run_sweep's validation call changed shape"
    violations = LintRunner().check_source(
        broken, display="<broken parallel>",
        logical="repro/experiments/parallel.py")
    rl016 = of_rule(violations, "RL016")
    assert len(rl016) == 1
    assert "update" in rl016[0].message


def test_real_scopes_are_clean():
    runner = LintRunner()
    violations = runner.check_paths([
        REPO / "src" / "repro" / "engine",
        REPO / "src" / "repro" / "core",
        REPO / "src" / "repro" / "experiments",
        REPO / "src" / "repro" / "faults",
    ])
    assert violations == []
