"""Call-graph construction and function-summary edge cases.

The interprocedural rules are only as sound as the graph under them, so
these tests pin the resolver's behaviour on the shapes the codebase
actually uses — bound methods through ``self``, single-assignment
aliases, decorated generators — and on the shapes it must *refuse* to
resolve (arbitrary receivers, rebound aliases).  The summary fixpoint is
exercised with mutual recursion, which must converge, not loop.
"""

import ast
import textwrap

from repro.lint.callgraph import build_call_graph, module_name_of
from repro.lint.summaries import compute_summaries


def graph_of(*modules):
    """Build a call graph from ``(logical, source)`` pairs."""
    return build_call_graph([
        (logical, ast.parse(textwrap.dedent(source)))
        for logical, source in modules])


def callees_of(cg, fid):
    return sorted(set(cg.callees(fid)))


def unknown_sites(cg, fid):
    return [site for site in cg.call_sites(fid) if site.callee is None]


# -- module naming -------------------------------------------------------------

def test_module_name_of_maps_init_to_package():
    assert module_name_of("repro/core/wtpg.py") == "repro.core.wtpg"
    assert module_name_of("repro/engine/__init__.py") == "repro.engine"


# -- resolution ----------------------------------------------------------------

def test_bound_method_through_self_resolves_within_class():
    cg = graph_of(("repro/machine/a.py", """\
        class Node:
            def run(self):
                self.step()
            def step(self):
                pass
    """))
    fid = ("repro/machine/a.py", "Node.run")
    assert callees_of(cg, fid) == [("repro/machine/a.py", "Node.step")]


def test_self_method_resolves_through_project_base_class():
    cg = graph_of(
        ("repro/machine/base.py", """\
            class Base:
                def helper(self):
                    pass
        """),
        ("repro/machine/sub.py", """\
            from repro.machine.base import Base

            class Sub(Base):
                def run(self):
                    self.helper()
        """))
    fid = ("repro/machine/sub.py", "Sub.run")
    assert callees_of(cg, fid) == [("repro/machine/base.py", "Base.helper")]


def test_single_assignment_alias_resolves_to_module_function():
    cg = graph_of(("repro/core/a.py", """\
        def helper():
            pass

        def run():
            f = helper
            f()
    """))
    fid = ("repro/core/a.py", "run")
    assert callees_of(cg, fid) == [("repro/core/a.py", "helper")]


def test_rebound_alias_is_soundly_unknown():
    cg = graph_of(("repro/core/a.py", """\
        def helper():
            pass

        def other():
            pass

        def run(flag):
            f = helper
            if flag:
                f = other
            f()
    """))
    fid = ("repro/core/a.py", "run")
    # Two candidate bindings: the alias map must refuse to pick one.
    assert callees_of(cg, fid) == []
    assert len(unknown_sites(cg, fid)) == 1


def test_wraps_decorated_generator_keeps_its_name_and_yield():
    cg = graph_of(("repro/machine/a.py", """\
        import functools

        def traced(fn):
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                return fn(*args, **kwargs)
            return wrapper

        @traced
        def worker(env):
            yield env.timeout(1)

        def run(env):
            return worker(env)
    """))
    fid = ("repro/machine/a.py", "worker")
    decl = cg.declaration(fid)
    assert decl is not None and decl.has_yield
    # The decorated def still resolves at its call site, and the nested
    # wrapper body is indexed separately without stealing the yield.
    assert ("repro/machine/a.py", "worker") in callees_of(
        cg, ("repro/machine/a.py", "run"))
    nested = cg.declaration(
        ("repro/machine/a.py", "traced.<locals>.wrapper"))
    assert nested is not None and not nested.has_yield


def test_imported_name_follows_package_init_reexport():
    cg = graph_of(
        ("repro/core/impl.py", """\
            def compute():
                pass
        """),
        ("repro/core/__init__.py", """\
            from repro.core.impl import compute
        """),
        ("repro/machine/user.py", """\
            from repro.core import compute

            def run():
                compute()
        """))
    fid = ("repro/machine/user.py", "run")
    assert callees_of(cg, fid) == [("repro/core/impl.py", "compute")]


def test_class_call_targets_init_and_instance_method_resolves():
    cg = graph_of(("repro/core/a.py", """\
        class Thing:
            def __init__(self):
                pass
            def poke(self):
                pass

        def run():
            t = Thing()
            Thing().poke()
    """))
    fid = ("repro/core/a.py", "run")
    assert callees_of(cg, fid) == [
        ("repro/core/a.py", "Thing.__init__"),
        ("repro/core/a.py", "Thing.poke"),
    ]


def test_arbitrary_receiver_is_soundly_unknown():
    cg = graph_of(("repro/machine/a.py", """\
        def run(node):
            node.step()
            getattr(node, "poke")()
    """))
    fid = ("repro/machine/a.py", "run")
    assert callees_of(cg, fid) == []
    assert len(unknown_sites(cg, fid)) >= 2


# -- summaries -----------------------------------------------------------------

def test_may_yield_propagates_through_calls():
    cg = graph_of(("repro/machine/a.py", """\
        class Node:
            def leaf(self, env):
                yield env.timeout(1)
            def middle(self, env):
                yield from self.leaf(env)
            def top(self, env):
                self.middle(env)
            def pure(self):
                return 1
    """))
    table = compute_summaries(cg)
    mod = "repro/machine/a.py"
    assert table.summary((mod, "Node.leaf")).may_yield
    assert table.summary((mod, "Node.middle")).may_yield
    assert table.summary((mod, "Node.top")).may_yield
    assert not table.summary((mod, "Node.pure")).may_yield


def test_mutual_recursion_summary_fixpoint_converges():
    cg = graph_of(("repro/machine/a.py", """\
        def ping(env, n):
            if n:
                pong(env, n - 1)

        def pong(env, n):
            yield env.timeout(1)
            ping(env, n)
    """))
    table = compute_summaries(cg)  # must terminate
    mod = "repro/machine/a.py"
    assert table.summary((mod, "ping")).may_yield
    assert table.summary((mod, "pong")).may_yield


def test_mutates_watched_lifts_through_callee():
    cg = graph_of(("repro/core/a.py", """\
        class Builder:
            def raw(self, key, value):
                self._pairs[key] = value
            def outer(self, key, value):
                self.raw(key, value)
    """))
    table = compute_summaries(cg)
    mod = "repro/core/a.py"
    assert table.summary((mod, "Builder.raw")).mutates_watched == {"_pairs"}
    assert table.summary((mod, "Builder.outer")).mutates_watched == {"_pairs"}
    assert table.summary((mod, "Builder.raw")).may_leave_unbumped


def test_must_bump_requires_every_path():
    cg = graph_of(("repro/core/a.py", """\
        class G:
            def always(self):
                self._pairs["k"] = 1
                self._generation += 1
            def sometimes(self, flag):
                self._pairs["k"] = 1
                if flag:
                    self._generation += 1
    """))
    table = compute_summaries(cg)
    mod = "repro/core/a.py"
    assert table.summary((mod, "G.always")).must_bump
    assert not table.summary((mod, "G.always")).may_leave_unbumped
    assert not table.summary((mod, "G.sometimes")).must_bump
    assert table.summary((mod, "G.sometimes")).may_leave_unbumped


def test_stream_facts_lift_returns_and_escaping_params():
    cg = graph_of(("repro/core/a.py", """\
        def make(streams):
            return streams.stream("noise")

        def stash(self, value_stream):
            self.noise = value_stream
    """))
    table = compute_summaries(cg)
    mod = "repro/core/a.py"
    assert table.summary((mod, "make")).returns_stream
    assert table.summary((mod, "stash")).escaping_params == {"value_stream"}
