"""CLI tests for the PR 9 flags: ``--explain`` and ``--changed-only``.

The older flags (--json, --select, --jobs, baselines, SARIF) are covered
in test_engine.py, test_baseline.py and test_sarif.py; this file holds
only the rule-explanation and git-scoped-reporting surface.
"""

import subprocess

from repro.lint.cli import main

BAD_SOURCE = (
    "def run(task):\n"
    "    try:\n"
    "        task()\n"
    "    except:\n"
    "        pass\n"
)


# -- --explain ----------------------------------------------------------------

def test_explain_typestate_rule_renders_the_protocol_table(capsys):
    assert main(["--explain", "RL013"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("RL013  ")
    assert "protocol: BAT lifecycle" in out
    assert "states: pending, active, aborted, committed (+ invalid)" in out
    assert ".reset_for_retry()" in out
    assert "restart only from aborted" in out


def test_explain_is_case_insensitive(capsys):
    assert main(["--explain", "rl014"]) == 0
    out = capsys.readouterr().out
    assert "protocol: Event lifecycle" in out
    assert "write to ._value" in out
    assert "(forbidden)" in out


def test_explain_plain_rule_prints_only_the_catalogue_entry(capsys):
    assert main(["--explain", "RL001"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("RL001  ")
    assert "protocol:" not in out


def test_explain_rejects_unknown_rules(capsys):
    assert main(["--explain", "RL999"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err and "RL016" in err


# -- --changed-only -----------------------------------------------------------

def _git(cwd, *args):
    subprocess.run(
        ["git", "-c", "user.email=t@example.com", "-c", "user.name=t",
         *args],
        cwd=cwd, check=True, capture_output=True)


def _seed_repo(tmp_path):
    repo = tmp_path / "work"
    pkg = repo / "repro" / "machine"
    pkg.mkdir(parents=True)
    (pkg / "old.py").write_text(BAD_SOURCE)
    _git(repo, "init", "-q")
    _git(repo, "add", "-A")
    _git(repo, "commit", "-q", "-m", "seed")
    return repo, pkg


def test_changed_only_reports_only_dirty_files(tmp_path, capsys,
                                               monkeypatch):
    repo, pkg = _seed_repo(tmp_path)
    (pkg / "new.py").write_text(BAD_SOURCE)
    monkeypatch.chdir(repo)
    assert main(["--changed-only", "."]) == 1
    out = capsys.readouterr().out
    assert "new.py" in out
    assert "old.py" not in out
    assert "1 violation in unchanged files not shown" in out


def test_changed_only_is_clean_when_only_committed_files_violate(
        tmp_path, capsys, monkeypatch):
    repo, _pkg = _seed_repo(tmp_path)
    monkeypatch.chdir(repo)
    assert main(["--changed-only", "."]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_changed_only_requires_a_git_work_tree(tmp_path, capsys,
                                               monkeypatch):
    (tmp_path / "x.py").write_text("x = 1\n")
    monkeypatch.chdir(tmp_path)
    assert main(["--changed-only", "x.py"]) == 2
    assert "requires git" in capsys.readouterr().err


def test_changed_only_refuses_to_write_a_partial_baseline(
        tmp_path, capsys, monkeypatch):
    repo, _pkg = _seed_repo(tmp_path)
    monkeypatch.chdir(repo)
    assert main(["--changed-only", "--write-baseline", "b.json", "."]) == 2
    assert "--write-baseline" in capsys.readouterr().err
