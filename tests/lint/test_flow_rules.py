"""Fixture tests for the flow-sensitive rules RL006–RL008.

Same pattern as test_rules.py: in-memory sources impersonate production
modules through ``logical`` so each rule's applicability and verdict are
unit-tested without touching the real tree.
"""

import textwrap

from repro.lint import LintRunner


def lint(source, logical):
    runner = LintRunner()
    return runner.check_source(textwrap.dedent(source),
                               display="<fixture>", logical=logical)


def rule_ids(violations):
    return [v.rule_id for v in violations]


# -- RL006: lock lifecycle -----------------------------------------------------

RL006_BAD = """\
    class Scheduler:
        def admit(self, txn, now):
            self.table.register(txn)
            if self.conflict(txn):
                return False
            self.table.unregister(txn)
            return True
"""

RL006_GOOD = """\
    class Scheduler:
        def admit(self, txn, now):
            self.table.register(txn)
            if self.conflict(txn):
                self.table.unregister(txn)
                return False
            self.table.unregister(txn)
            return True
"""


def test_rl006_fires_when_a_release_misses_one_path():
    violations = lint(RL006_BAD, "repro/core/schedulers/example.py")
    assert rule_ids(violations) == ["RL006"]
    [v] = violations
    assert v.line == 3  # reported at the acquire site
    assert "register()" in v.message and "admit" in v.message


def test_rl006_silent_when_every_path_releases():
    assert lint(RL006_GOOD, "repro/core/schedulers/example.py") == []


def test_rl006_acquire_only_functions_persist_by_design():
    """2PL-style registrations that live past the function are exempt:
    a function that never releases intraprocedurally is not judged."""
    source = """\
        class Scheduler:
            def admit(self, txn, now):
                self.table.register(txn)
                return True
    """
    assert lint(source, "repro/core/schedulers/example.py") == []


def test_rl006_finally_release_is_clean():
    source = """\
        class Node:
            def run(self, txn):
                grant = self.cpu.request()
                try:
                    self.work(txn)
                finally:
                    self.cpu.release(grant)
    """
    assert lint(source, "repro/machine/example.py") == []


def test_rl006_catches_a_leak_through_an_explicit_raise():
    source = """\
        class Node:
            def run(self, txn):
                grant = self.cpu.request()
                if txn.bad():
                    raise ValueError(txn)
                self.cpu.release(grant)
    """
    violations = lint(source, "repro/machine/example.py")
    assert rule_ids(violations) == ["RL006"]
    assert violations[0].line == 3


def test_rl006_scoped_to_schedulers_locks_and_machine():
    assert lint(RL006_BAD, "repro/core/estimator.py") == []
    assert lint(RL006_BAD, "repro/workloads/example.py") == []


# -- RL007: unguarded cache reads ----------------------------------------------

RL007_BAD = """\
    class WTPG:
        def critical_path_length(self):
            dist = self._cp_dist
            if self._cp_gen == self._structure_gen and dist is not None:
                return max(dist)
            return 0.0
"""

RL007_GOOD = """\
    class WTPG:
        def critical_path_length(self):
            if (self._cp_gen == self._structure_gen
                    and self._cp_dist is not None):
                return max(self._cp_dist)
            return 0.0
"""


def test_rl007_flags_the_read_before_the_guard():
    violations = lint(RL007_BAD, "repro/core/wtpg.py")
    assert rule_ids(violations) == ["RL007"]
    [v] = violations
    assert v.line == 3
    assert "_cp_dist" in v.message and "critical-path" in v.message


def test_rl007_guard_first_is_clean():
    assert lint(RL007_GOOD, "repro/core/wtpg.py") == []


def test_rl007_mutation_after_guard_re_dirties_the_caches():
    source = """\
        class WTPG:
            def add_edge(self, u, v):
                self._ensure_topo()
                self._succ[u].add(v)
                self._generation += 1
                return self._topo_order
    """
    violations = lint(source, "repro/core/wtpg.py")
    # RL002 stays quiet (the mutation is bumped); RL007 flags the read
    # because neither the mutation nor the bump re-certifies the memo.
    assert rule_ids(violations) == ["RL007"]
    assert "_topo_order" in violations[0].message


def test_rl007_fresh_store_certifies_that_field():
    source = """\
        class WTPG:
            def _rebuild(self):
                self._cp_dist = self._compute()
                return self._cp_dist
    """
    assert lint(source, "repro/core/wtpg.py") == []


def test_rl007_exempt_maintenance_methods():
    source = """\
        class WTPG:
            def cache_violations(self):
                return self._cp_dist
    """
    assert lint(source, "repro/core/wtpg.py") == []


def test_rl007_inplace_maintenance_on_the_cache_is_not_a_read():
    source = """\
        class WTPG:
            def _drop(self, tid):
                self._anc_cache.pop(tid, None)
    """
    assert lint(source, "repro/core/wtpg.py") == []


def test_rl007_only_applies_to_modules_with_declared_families():
    # (RL004 may still fire there — the comparison names look like
    # critical-path floats — but the cache-read rule must not.)
    found = rule_ids(lint(RL007_BAD, "repro/core/schedulers/asl_scheduler.py"))
    assert "RL007" not in found


def test_rl007_estimator_family_guards():
    bad = """\
        class Estimator:
            def peek(self):
                return self._base_dist
    """
    good = """\
        class Estimator:
            def peek(self):
                self._prime()
                return self._base_dist
    """
    assert rule_ids(lint(bad, "repro/core/estimator.py")) == ["RL007"]
    assert lint(good, "repro/core/estimator.py") == []


# -- RL008: RNG stream escape --------------------------------------------------

def test_rl008_flags_a_stream_cached_in_an_innocuous_attribute():
    source = """\
        class Thing:
            def __init__(self, streams):
                self._rng = streams.stream("arrivals")
    """
    violations = lint(source, "repro/core/example.py")
    assert rule_ids(violations) == ["RL008"]
    assert "'_rng'" in violations[0].message


def test_rl008_stream_named_attribute_is_clean():
    source = """\
        class Thing:
            def __init__(self, streams):
                self._arrival_stream = streams.stream("arrivals")
    """
    assert lint(source, "repro/core/example.py") == []


def test_rl008_flags_module_scope_streams():
    source = """\
        from repro.engine import RandomStreams

        STREAMS = RandomStreams(42)
    """
    violations = lint(source, "repro/workloads/example.py")
    assert rule_ids(violations) == ["RL008"]
    assert violations[0].line == 3


def test_rl008_taint_propagates_through_locals_to_a_public_return():
    source = """\
        def make(streams):
            s = streams.stream("x")
            return s
    """
    violations = lint(source, "repro/core/example.py")
    assert rule_ids(violations) == ["RL008"]
    assert "public function make" in violations[0].message


def test_rl008_private_helpers_may_return_streams():
    source = """\
        def _make(streams):
            s = streams.stream("x")
            return s
    """
    assert lint(source, "repro/core/example.py") == []


def test_rl008_reassignment_kills_the_taint():
    source = """\
        def use(streams):
            s = streams.stream("x")
            s = s.random()
            return s
    """
    assert lint(source, "repro/core/example.py") == []


def test_rl008_stream_named_parameters_are_tainted():
    source = """\
        class C:
            def attach(self, stream):
                self.rng = stream
    """
    violations = lint(source, "repro/machine/example.py")
    assert rule_ids(violations) == ["RL008"]


def test_rl008_container_store_needs_a_stream_named_root():
    bad = """\
        class C:
            def reg(self, streams):
                self._table["x"] = streams.stream("x")
    """
    good = """\
        class C:
            def reg(self, streams):
                self._streams_by_name["x"] = streams.stream("x")
    """
    assert rule_ids(lint(bad, "repro/core/example.py")) == ["RL008"]
    assert lint(good, "repro/core/example.py") == []


def test_rl008_engine_and_faults_own_their_streams():
    source = """\
        class Thing:
            def __init__(self, streams):
                self._rng = streams.stream("arrivals")
    """
    assert lint(source, "repro/engine/example.py") == []
    assert lint(source, "repro/faults/example.py") == []
