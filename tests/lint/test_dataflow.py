"""Solver and lattice tests for :mod:`repro.lint.dataflow`.

The synthetic problems here run on tiny real CFGs (built from source
fixtures) so the solver is exercised through the same
:func:`~repro.lint.cfg.build_cfg` path the rules use.
"""

import ast
import textwrap

import pytest

from repro.lint.cfg import build_cfg, functions_of
from repro.lint.dataflow import (FixpointError, IntersectionLattice,
                                 ResourceFact, ResourceSpec, TOP,
                                 UnionLattice, resource_gen_kill,
                                 resource_transfer, solve_forward)

LOCK = ResourceSpec(name="lock",
                    acquire=frozenset({"acquire"}),
                    release=frozenset({"release"}))


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(functions_of(tree)[0])


LOOP_SOURCE = """\
    def f(table, items):
        table.acquire()
        for item in items:
            if item.bad():
                table.release()
        return items
"""


# -- lattices ------------------------------------------------------------------

def test_union_lattice_is_a_join_semilattice():
    lat = UnionLattice()
    a, b = frozenset({1}), frozenset({2})
    assert lat.bottom() == frozenset()
    assert lat.join(a, b) == lat.join(b, a) == frozenset({1, 2})
    assert lat.join(a, lat.bottom()) == a


def test_intersection_lattice_top_is_the_identity():
    lat = IntersectionLattice()
    a, b = frozenset({1, 2}), frozenset({2, 3})
    assert lat.bottom() is TOP
    assert lat.join(TOP, a) == a
    assert lat.join(a, TOP) == a
    assert lat.join(a, b) == frozenset({2})


# -- convergence ---------------------------------------------------------------

def test_solver_converges_on_a_loop_with_a_conditional_kill():
    """May-analysis through a loop: after the loop the lock may or may
    not still be open (release on one path only), so the fact survives
    the join and is live at exit."""
    cfg = cfg_of(LOOP_SOURCE)
    result = solve_forward(cfg, UnionLattice(),
                           resource_transfer([LOCK]), frozenset())
    at_exit = result.entering(cfg.exit)
    assert {f.spec for f in at_exit} == {"lock"}
    [fact] = at_exit
    assert (fact.line, fact.call) == (2, "acquire")


def test_solver_reaches_the_same_fixpoint_regardless_of_seeding_order():
    cfg = cfg_of(LOOP_SOURCE)
    transfer = resource_transfer([LOCK])
    baseline = solve_forward(cfg, UnionLattice(), transfer, frozenset())
    again = solve_forward(cfg, UnionLattice(), transfer, frozenset())
    assert baseline.values_in == again.values_in
    assert baseline.values_out == again.values_out


def test_must_analysis_drops_facts_not_on_every_path():
    """Intersection over the branches: the acquire happens on one arm
    only, so at the join it is not a *must* fact."""
    cfg = cfg_of("""\
        def f(table, flag):
            if flag:
                table.acquire()
            return flag
    """)

    def transfer(node, value):
        if value is TOP:
            value = frozenset()
        if node.stmt is None or not isinstance(node.stmt, ast.stmt):
            return value
        gens, kills = resource_gen_kill(node.stmt, [LOCK])
        value = frozenset(f for f in value if f.spec not in kills)
        return value | frozenset(gens)

    result = solve_forward(cfg, IntersectionLattice(), transfer,
                           frozenset())
    assert result.entering(cfg.exit) == frozenset()


def test_non_monotone_transfer_raises_fixpoint_error():
    """A transfer that alternates between two values never stabilises;
    the visit cap turns that into a loud error instead of a hang."""
    cfg = cfg_of(LOOP_SOURCE)
    flips = {}

    def transfer(node, value):
        flips[node.index] = not flips.get(node.index, False)
        return frozenset({("tick", flips[node.index])})

    with pytest.raises(FixpointError, match="non-monotone"):
        solve_forward(cfg, UnionLattice(), transfer, frozenset(),
                      max_passes=10)


# -- resource facts ------------------------------------------------------------

def test_resource_gen_kill_reads_method_calls_only():
    stmt = ast.parse("acquire(); t.acquire(); t.release()").body
    gens0, kills0 = resource_gen_kill(stmt[0], [LOCK])
    assert (gens0, kills0) == ([], frozenset())
    gens1, _ = resource_gen_kill(stmt[1], [LOCK])
    assert [(g.spec, g.call) for g in gens1] == [("lock", "acquire")]
    _, kills2 = resource_gen_kill(stmt[2], [LOCK])
    assert kills2 == frozenset({"lock"})


def test_resource_transfer_kills_before_it_gens():
    """A single statement that both releases and re-acquires leaves
    exactly the fresh fact open, not the stale one."""
    transfer = resource_transfer([LOCK])
    stale = ResourceFact("lock", 99, 0, "acquire")

    class FakeNode:
        def __init__(self, s):
            self.stmt = s

    release = ast.parse("t.release()").body[0]
    assert transfer(FakeNode(release), frozenset({stale})) == frozenset()

    both = ast.parse("t.acquire(t.release())").body[0]
    value = transfer(FakeNode(both), frozenset({stale}))
    assert stale not in value
    assert {(f.spec, f.call) for f in value} == {("lock", "acquire")}


def test_compound_headers_only_see_their_own_calls():
    """A loop header must not execute its body's calls: the release
    inside the loop body kills at the body node, never at the header."""
    stmt = ast.parse(textwrap.dedent("""\
        for item in items:
            t.release()
    """)).body[0]
    gens, kills = resource_gen_kill(stmt, [LOCK])
    assert (gens, kills) == ([], frozenset())
