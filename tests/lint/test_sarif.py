"""Structural SARIF 2.1.0 validation (no jsonschema in the container:
the assertions pin the exact subset GitHub code scanning consumes)."""

import json
import subprocess
import sys
from pathlib import Path

import repro.lint.engine  # noqa: F401  (registers the rule catalogue)
from repro.lint.model import Violation, all_rules
from repro.lint.sarif import (FINGERPRINT_KEY, SARIF_SCHEMA, SARIF_VERSION,
                              TOOL_NAME, TOOL_VERSION, artifact_uri,
                              render_sarif)


def sample_violations(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text("t.register()\nt.request()\n", encoding="utf-8")
    return [
        Violation("RL006", str(source), 1, 0, "leak one"),
        Violation("RL007", str(source), 2, 4, "stale read"),
    ]


def document_for(tmp_path):
    text = render_sarif(sample_violations(tmp_path), all_rules(),
                        root=tmp_path)
    return json.loads(text)


def test_top_level_shape(tmp_path):
    doc = document_for(tmp_path)
    assert doc["$schema"] == SARIF_SCHEMA
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert len(doc["runs"]) == 1


def test_driver_carries_the_full_rule_catalogue(tmp_path):
    driver = document_for(tmp_path)["runs"][0]["tool"]["driver"]
    assert driver["name"] == TOOL_NAME
    assert driver["version"] == TOOL_VERSION
    ids = [rule["id"] for rule in driver["rules"]]
    assert ids == [f"RL{i:03d}" for i in range(1, 17)]
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]


def test_results_reference_rules_by_index(tmp_path):
    doc = document_for(tmp_path)
    driver = doc["runs"][0]["tool"]["driver"]
    for result in doc["runs"][0]["results"]:
        index = result["ruleIndex"]
        assert driver["rules"][index]["id"] == result["ruleId"]


def test_result_locations_are_one_based_and_repo_relative(tmp_path):
    results = document_for(tmp_path)["runs"][0]["results"]
    assert len(results) == 2
    first = results[0]
    assert first["level"] == "error"
    assert first["message"]["text"] == "leak one"
    location = first["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "mod.py"
    assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    assert location["region"]["startLine"] == 1
    # ast columns are 0-based, SARIF's are 1-based.
    assert location["region"]["startColumn"] == 1
    assert results[1]["locations"][0]["physicalLocation"]["region"][
        "startColumn"] == 5


def test_results_carry_baseline_fingerprints(tmp_path):
    results = document_for(tmp_path)["runs"][0]["results"]
    prints = [r["partialFingerprints"][FINGERPRINT_KEY] for r in results]
    assert all(len(p) == 64 for p in prints)  # sha256 hex
    assert len(set(prints)) == 2


def test_artifact_uri_falls_back_outside_the_root(tmp_path):
    inside = tmp_path / "pkg" / "mod.py"
    assert artifact_uri(str(inside), root=tmp_path) == "pkg/mod.py"
    outside = Path("/somewhere/else/mod.py")
    assert artifact_uri(str(outside), root=tmp_path) == outside.as_posix()


def test_clean_run_renders_an_empty_results_array(tmp_path):
    doc = json.loads(render_sarif([], all_rules(), root=tmp_path))
    assert doc["runs"][0]["results"] == []


def test_cli_sarif_flag_end_to_end(tmp_path):
    """`python -m repro.lint --sarif FILE` writes a parseable document
    whose driver matches the registry — the exact artifact CI uploads."""
    out = tmp_path / "report.sarif"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--sarif", str(out),
         "src/repro/lint/sarif.py"],
        capture_output=True, text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text(encoding="utf-8"))
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"


def test_cli_sarif_refuses_non_report_targets(tmp_path):
    """Regression for the flag-parsing footgun: `--sarif src/x.py` would
    silently overwrite the *source file* with the report."""
    victim = tmp_path / "victim.py"
    victim.write_text("x = 1\n", encoding="utf-8")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--sarif", str(victim)],
        capture_output=True, text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 2
    assert victim.read_text(encoding="utf-8") == "x = 1\n"
