"""Fixture tests for the interprocedural rules RL009–RL012.

Single-file fixtures go through ``check_source`` (which builds a
one-file project); cross-module facts go through ``check_sources`` so
both files land in the same call graph.  The teeth tests lint
deliberately-broken copies of the *real* machine-layer sources — the
committed suppressions stripped — to prove the rules fire on production
code shapes, not just on minimal fixtures.
"""

import re
import textwrap
from pathlib import Path

from repro.lint import LintRunner

REPO = Path(__file__).resolve().parents[2]


def lint(source, logical):
    runner = LintRunner()
    return runner.check_source(textwrap.dedent(source),
                               display="<fixture>", logical=logical)


def lint_many(*entries):
    """Lint ``(logical, source)`` pairs as one project."""
    runner = LintRunner()
    return runner.check_sources([
        (f"<fixture:{logical}>", logical, textwrap.dedent(source))
        for logical, source in entries])


def rule_ids(violations):
    return [v.rule_id for v in violations]


# -- RL009: stale snapshots across yield points --------------------------------

RL009_BAD_DIRECT = """\
    class Node:
        def run(self, env):
            response = self.scheduler.admit(1)
            yield env.timeout(1)
            if response.admitted:
                return True
"""

RL009_BAD_VIA_CALL = """\
    class Node:
        def pause(self, env):
            yield env.timeout(1)

        def run(self, env):
            item = self._queue.popleft()
            self.pause(env)
            return item.remaining
"""

RL009_GOOD_REREAD = """\
    class Node:
        def run(self, env):
            response = self.scheduler.admit(1)
            yield env.timeout(1)
            response = self.scheduler.admit(1)
            if response.admitted:
                return True
"""

RL009_GOOD_GUARDED = """\
    class Node:
        def run(self, env):
            gen = self.scheduler.generation
            plan = self.scheduler.admit(1)
            yield env.timeout(1)
            if self.scheduler.generation == gen and plan.admitted:
                return True
"""

RL009_GOOD_READ_BEFORE_YIELD = """\
    class Node:
        def run(self, env):
            item = self._queue.popleft()
            quantum = min(1.0, item.remaining)
            yield env.timeout(quantum)
            self.busy_time += quantum
"""


def test_rl009_flags_direct_yield_snapshot():
    violations = lint(RL009_BAD_DIRECT, "repro/machine/node.py")
    assert rule_ids(violations) == ["RL009"]
    assert "response" in violations[0].message
    assert violations[0].line == 5


def test_rl009_flags_snapshot_across_may_yield_call():
    violations = lint(RL009_BAD_VIA_CALL, "repro/machine/node.py")
    assert rule_ids(violations) == ["RL009"]
    assert "item" in violations[0].message


def test_rl009_one_finding_per_snapshot():
    source = RL009_BAD_DIRECT + """\

        def twice(self, env):
            response = self.scheduler.admit(1)
            yield env.timeout(1)
            first = response.admitted
            second = response.reason
            return first, second
    """
    violations = lint(source, "repro/machine/node.py")
    # One per snapshot — the textually first stale read — not one per read.
    assert rule_ids(violations) == ["RL009", "RL009"]


def test_rl009_clean_shapes():
    for source in (RL009_GOOD_REREAD, RL009_GOOD_GUARDED,
                   RL009_GOOD_READ_BEFORE_YIELD):
        assert lint(source, "repro/machine/node.py") == []


def test_rl009_only_applies_to_machine_layer():
    assert lint(RL009_BAD_DIRECT, "repro/core/helpers.py") == []


def test_rl009_cross_module_may_yield_call():
    violations = lint_many(
        ("repro/machine/waits.py", """\
            def settle(env):
                yield env.timeout(1)
        """),
        ("repro/machine/node.py", """\
            from repro.machine.waits import settle

            class Node:
                def run(self, env):
                    item = self._queue.popleft()
                    settle(env)
                    return item.remaining
        """))
    assert rule_ids(violations) == ["RL009"]
    assert violations[0].file == "<fixture:repro/machine/node.py>"


# -- RL010: un-bumped watched mutation across a yield --------------------------

RL010_BAD_DIRECT = """\
    class Builder:
        def flow(self, env, key):
            self._pairs[key] = 1.0
            yield env.timeout(1)
            self._generation += 1
"""

RL010_BAD_VIA_CALL = """\
    class Builder:
        def raw(self, key):
            self._pairs[key] = 1.0

        def flow(self, env, key):
            self.raw(key)
            yield env.timeout(1)
            self._generation += 1
"""

RL010_GOOD_BUMP_FIRST = """\
    class Builder:
        def flow(self, env, key):
            self._pairs[key] = 1.0
            self._generation += 1
            yield env.timeout(1)
"""

RL010_GOOD_MUST_BUMP_CALLEE = """\
    class Builder:
        def raw(self, key):
            self._pairs[key] = 1.0
            self._generation += 1

        def flow(self, env, key):
            self.raw(key)
            yield env.timeout(1)
"""


def test_rl010_flags_mutation_reaching_yield():
    violations = lint(RL010_BAD_DIRECT, "repro/machine/builder.py")
    assert rule_ids(violations) == ["RL010"]
    assert violations[0].line == 3  # reported at the mutation site


def test_rl010_flags_unbumped_callee_mutation():
    violations = lint(RL010_BAD_VIA_CALL, "repro/machine/builder.py")
    assert rule_ids(violations) == ["RL010"]
    assert "Builder.raw()" in violations[0].message


def test_rl010_clean_shapes():
    for source in (RL010_GOOD_BUMP_FIRST, RL010_GOOD_MUST_BUMP_CALLEE):
        assert lint(source, "repro/machine/builder.py") == []


def test_rl010_applies_to_core_too():
    assert "RL010" in rule_ids(
        lint(RL010_BAD_DIRECT, "repro/core/builder.py"))


# -- RL011: interprocedural RNG-stream escape ----------------------------------

RL011_BAD_RETURNED_STREAM_STORED = """\
    def make(streams):
        return streams.stream("noise")

    class Model:
        def setup(self, streams):
            source = make(streams)
            self.noise = source
"""

RL011_BAD_ESCAPING_PARAM = """\
    def stash(sink, value_stream):
        sink.noise = value_stream

    class Model:
        def setup(self, streams):
            source = streams.stream("noise")
            stash(self, source)
"""

RL011_BAD_MODULE_SCOPE = """\
    def make():
        return RandomStreams(7).stream("ambient")

    NOISE = make()
"""

RL011_GOOD_STREAM_NAMED = """\
    def make(streams):
        return streams.stream("noise")

    class Model:
        def setup(self, streams):
            self._noise_stream = make(streams)
"""


def test_rl011_flags_store_of_call_returned_stream():
    violations = lint(RL011_BAD_RETURNED_STREAM_STORED,
                      "repro/core/model.py")
    # `make` also trips RL008's public-return check — the intra fallback.
    assert "RL011" in rule_ids(violations)
    rl011 = [v for v in violations if v.rule_id == "RL011"]
    assert len(rl011) == 1 and "'noise'" in rl011[0].message


def test_rl011_flags_argument_to_escaping_param():
    violations = lint(RL011_BAD_ESCAPING_PARAM, "repro/core/model.py")
    # RL008 (intra fallback) flags the store inside stash itself; RL011
    # adds the call-site hand-off the intraprocedural rule cannot see.
    assert rule_ids(violations) == ["RL008", "RL011"]
    rl011 = violations[1]
    assert "'value_stream'" in rl011.message
    assert "stash" in rl011.message


def test_rl011_flags_module_scope_stream_binding():
    violations = lint(RL011_BAD_MODULE_SCOPE, "repro/core/model.py")
    # RL008 flags the public return intra-procedurally; RL011 adds the
    # module-scope binding it cannot see.
    assert rule_ids(violations) == ["RL008", "RL011"]
    assert violations[1].line == 4


def test_rl011_does_not_duplicate_rl008_findings():
    source = """\
        class Model:
            def setup(self, streams):
                self.noise = streams.stream("x")
    """
    violations = lint(source, "repro/core/model.py")
    assert rule_ids(violations) == ["RL008"]


def test_rl011_clean_when_stream_named():
    violations = lint(RL011_GOOD_STREAM_NAMED, "repro/core/model.py")
    assert "RL011" not in rule_ids(violations)


def test_rl011_silent_in_engine_and_faults():
    assert lint(RL011_BAD_ESCAPING_PARAM, "repro/engine/model.py") == []
    assert lint(RL011_BAD_ESCAPING_PARAM, "repro/faults/model.py") == []


def test_rl011_cross_module_returned_stream():
    violations = lint_many(
        ("repro/core/factory.py", """\
            def make(streams):
                return streams.stream("noise")
        """),
        ("repro/core/model.py", """\
            from repro.core.factory import make

            class Model:
                def setup(self, streams):
                    self.noise = make(streams)
        """))
    by_file = [v for v in violations
               if v.rule_id == "RL011"
               and v.file == "<fixture:repro/core/model.py>"]
    assert len(by_file) == 1


# -- RL012: schedulers stay synchronous ----------------------------------------

RL012_BAD_YIELD = """\
    class Sched:
        def admit(self, txn, now):
            yield 1
"""

RL012_BAD_CALL_CHAIN = """\
    def settle(env):
        yield env.timeout(1)

    class Sched:
        def admit(self, txn, env):
            settle(env)
            return True
"""

RL012_GOOD_SYNCHRONOUS = """\
    class Sched:
        def admit(self, txn, now):
            self.table.register(txn)
            self.table.unregister(txn)
            return True
"""

RL012_GOOD_UNKNOWN_CALL = """\
    class Sched:
        def admit(self, txn, env):
            env.process(txn)
            return True
"""


def test_rl012_flags_yield_in_scheduler():
    violations = lint(RL012_BAD_YIELD, "repro/core/schedulers/s.py")
    assert "RL012" in rule_ids(violations)


def test_rl012_flags_resolved_call_into_may_yield():
    violations = lint(RL012_BAD_CALL_CHAIN, "repro/core/schedulers/s.py")
    ids = rule_ids(violations)
    # One for settle's own yield, one for the call reaching it.
    assert ids.count("RL012") == 2


def test_rl012_silent_on_unknown_calls_and_clean_schedulers():
    assert lint(RL012_GOOD_SYNCHRONOUS, "repro/core/schedulers/s.py") == []
    assert lint(RL012_GOOD_UNKNOWN_CALL, "repro/core/schedulers/s.py") == []


def test_rl012_only_applies_to_schedulers():
    assert "RL012" not in rule_ids(
        lint(RL012_BAD_YIELD, "repro/machine/node.py"))


def test_rl012_cross_module_call_chain():
    violations = lint_many(
        ("repro/machine/waits.py", """\
            def settle(env):
                yield env.timeout(1)
        """),
        ("repro/core/schedulers/s.py", """\
            from repro.machine.waits import settle

            class Sched:
                def admit(self, txn, env):
                    settle(env)
                    return True
        """))
    in_scheduler = [v for v in violations if v.rule_id == "RL012"]
    assert len(in_scheduler) == 1
    assert in_scheduler[0].file == "<fixture:repro/core/schedulers/s.py>"


# -- teeth: the rules fire on broken copies of the real sources ----------------

def _without_suppressions(path):
    source = path.read_text(encoding="utf-8")
    return re.sub(r"#\s*repro-lint:[^\n]*", "", source)


def test_rl009_teeth_on_real_control_node():
    source = _without_suppressions(
        REPO / "src/repro/machine/control_node.py")
    runner = LintRunner()
    violations = runner.check_source(
        source, display="<broken control_node>",
        logical="repro/machine/control_node.py")
    rl009 = [v for v in violations if v.rule_id == "RL009"]
    # The admission and lock-grant responses are both held across the
    # CPU-cost yield; with the justified suppressions stripped, the rule
    # must find exactly those two snapshots.
    assert len(rl009) == 2
    assert all("response" in v.message for v in rl009)


def test_rl009_teeth_on_real_data_node():
    source = _without_suppressions(REPO / "src/repro/machine/data_node.py")
    runner = LintRunner()
    violations = runner.check_source(
        source, display="<broken data_node>",
        logical="repro/machine/data_node.py")
    rl009 = [v for v in violations if v.rule_id == "RL009"]
    # Both service loops (reference and batched) hold the popped work
    # item across the quantum yield.
    assert len(rl009) == 2
    assert all("item" in v.message for v in rl009)


def test_real_tree_is_clean():
    runner = LintRunner()
    violations = runner.check_paths([REPO / "src" / "repro" / "machine"])
    assert violations == []
