"""Suppression directives: same-line scope, mandatory justification."""

import textwrap

from repro.lint import LintRunner
from repro.lint.suppressions import parse_suppressions

BAD_LINE = "    except Exception:  # repro-lint: disable={directive}\n"


def lint(source, logical="repro/machine/example.py"):
    return LintRunner().check_source(textwrap.dedent(source),
                                     display="<fixture>", logical=logical)


def make_source(directive):
    return (
        "def run(task):\n"
        "    try:\n"
        "        task()\n"
        f"    except Exception:  # repro-lint: disable={directive}\n"
        "        pass\n"
    )


def test_justified_suppression_silences_the_rule():
    source = make_source("RL005 -- fixture exercising the escape hatch")
    assert lint(source) == []


def test_unjustified_suppression_is_an_rl000_violation():
    source = make_source("RL005")
    violations = lint(source)
    # The RL005 finding is silenced, but the naked directive itself is
    # flagged so every escape hatch in the tree documents its rationale.
    assert [v.rule_id for v in violations] == ["RL000"]
    assert violations[0].line == 4
    assert "justification" in violations[0].message


def test_suppression_only_covers_named_rules():
    source = make_source("RL001 -- wrong rule named")
    assert [v.rule_id for v in lint(source)] == ["RL005"]


def test_suppression_only_covers_its_own_line():
    source = (
        "# repro-lint: disable=RL005 -- wrong line\n"
        "def run(task):\n"
        "    try:\n"
        "        task()\n"
        "    except Exception:\n"
        "        pass\n"
    )
    assert [v.rule_id for v in lint(source)] == ["RL005"]


def test_directive_parser_handles_multiple_rules_and_case():
    table = parse_suppressions(
        "x = 1  # repro-lint: disable=rl001, RL004 -- both apply here\n")
    assert list(table) == [1]
    directive = table[1]
    assert directive.rule_ids == frozenset({"RL001", "RL004"})
    assert directive.justified
    assert directive.justification == "both apply here"


def test_directive_without_rules_names_nothing():
    table = parse_suppressions("x = 1  # repro-lint: disable= -- why\n")
    assert table[1].rule_ids == frozenset()
