"""Golden-edge tests for the lint CFG builder.

Each fixture pins the full sorted labelled edge list
(:meth:`repro.lint.cfg.CFG.edges`) of one function, so any change to the
builder's modelling decisions — finally duplication, break/else routing,
implicit-exception targets — shows up as a concrete edge diff rather
than a silently shifted rule verdict.
"""

import ast
import textwrap

from repro.lint.cfg import build_cfg, functions_of


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    fns = functions_of(tree)
    assert len(fns) == 1
    return build_cfg(fns[0])


def edges_of(source):
    return cfg_of(source).edges()


# -- try/finally ---------------------------------------------------------------

def test_try_finally_duplicates_the_finally_per_continuation():
    """The normal path runs the ``#2`` finally copy and continues; the
    exceptional copy (fed by the pre-body frontier and the guarded
    statement) chains to the raise exit."""
    edges = edges_of("""\
        def f(x):
            try:
                work(x)
            finally:
                cleanup()
            after(x)
    """)
    assert edges == [
        ("L3:Expr", "L5:Expr#2"),
        ("L3:Expr", "finally@L5[exc]"),
        ("L5:Expr", "raise"),
        ("L5:Expr#2", "L6:Expr"),
        ("L6:Expr", "exit"),
        ("entry", "L3:Expr"),
        ("entry", "finally@L5[exc]"),
        ("finally@L5[exc]", "L5:Expr"),
    ]


def test_return_inside_try_flows_through_a_fresh_finally_copy():
    """The return gets its own finally copy feeding ``exit`` — distinct
    from the exceptional copy, so facts on the return path never
    contaminate the raise path.  The acquire before the try stays
    outside the guarded region (no implicit raise edge from L2)."""
    edges = edges_of("""\
        def f(lock):
            lock.acquire()
            try:
                return use(lock)
            finally:
                lock.release()
    """)
    assert edges == [
        ("L2:Expr", "L4:Return"),
        ("L2:Expr", "finally@L6[exc]"),
        ("L4:Return", "L6:Expr#2"),
        ("L4:Return", "finally@L6[exc]"),
        ("L6:Expr", "raise"),
        ("L6:Expr#2", "exit"),
        ("entry", "L2:Expr"),
        ("finally@L6[exc]", "L6:Expr"),
    ]


# -- with ----------------------------------------------------------------------

def test_with_is_a_plain_statement_and_return_short_circuits():
    """``with`` contributes no implicit finally; a return inside the
    body goes straight to ``exit`` and the dead tail after it is never
    built (no unreachable nodes)."""
    edges = edges_of("""\
        def f(res):
            with res.open() as h:
                if h.bad():
                    return None
                h.use()
            return h
    """)
    assert edges == [
        ("L2:With", "L3:If"),
        ("L3:If", "L4:Return"),
        ("L3:If", "L5:Expr"),
        ("L4:Return", "exit"),
        ("L5:Expr", "L6:Return"),
        ("L6:Return", "exit"),
        ("entry", "L2:With"),
    ]


# -- while/else ----------------------------------------------------------------

def test_while_else_break_bypasses_the_else_clause():
    """Condition-false runs the ``else``; ``break`` jumps past it to the
    statement after the loop, exactly as Python routes it."""
    edges = edges_of("""\
        def f(items):
            while items:
                if items.pop():
                    break
            else:
                fallback()
            return items
    """)
    assert edges == [
        ("L2:While", "L3:If"),
        ("L2:While", "L6:Expr"),
        ("L3:If", "L2:While"),
        ("L3:If", "L4:Break"),
        ("L4:Break", "L7:Return"),
        ("L6:Expr", "L7:Return"),
        ("L7:Return", "exit"),
        ("entry", "L2:While"),
    ]


def test_while_true_keeps_the_exit_edge():
    """Documented over-approximation: even ``while True`` gets the
    condition-false edge, so post-loop code is analysed."""
    cfg = cfg_of("""\
        def f(q):
            while True:
                q.tick()
    """)
    labels = cfg.labels()
    header = next(n for n in cfg.nodes
                  if labels[n.index] == "L2:While")
    assert cfg.exit.index in header.succs


def test_for_continue_goes_back_to_the_header():
    edges = edges_of("""\
        def f(items):
            for item in items:
                if item.skip():
                    continue
                handle(item)
            return items
    """)
    assert edges == [
        ("L2:For", "L3:If"),
        ("L2:For", "L6:Return"),
        ("L3:If", "L4:Continue"),
        ("L3:If", "L5:Expr"),
        ("L4:Continue", "L2:For"),
        ("L5:Expr", "L2:For"),
        ("L6:Return", "exit"),
        ("entry", "L2:For"),
    ]


# -- nested except / re-raise --------------------------------------------------

def test_nested_except_reraise_propagates_to_the_outer_handler():
    """A bare ``raise`` in the inner handler flows to the *outer*
    handler (never a sibling); the outer handler's own statements keep
    their raise-exit edge.  Pre-body frontiers feed both handlers —
    an exception can fire before any body statement's effect lands."""
    edges = edges_of("""\
        def f(x):
            try:
                try:
                    work(x)
                except ValueError:
                    raise
            except Exception:
                recover(x)
            return x
    """)
    assert edges == [
        ("L4:Expr", "L5:ExceptHandler"),
        ("L4:Expr", "L9:Return"),
        ("L5:ExceptHandler", "L6:Raise"),
        ("L6:Raise", "L7:ExceptHandler"),
        ("L7:ExceptHandler", "L8:Expr"),
        ("L8:Expr", "L9:Return"),
        ("L8:Expr", "raise"),
        ("L9:Return", "exit"),
        ("entry", "L4:Expr"),
        ("entry", "L5:ExceptHandler"),
        ("entry", "L7:ExceptHandler"),
    ]


# -- structural sanity ---------------------------------------------------------

def test_dead_code_after_return_is_never_built():
    cfg = cfg_of("""\
        def f(x):
            return x
            unreachable(x)
    """)
    lines = {n.stmt.lineno for n in cfg.stmt_nodes()}
    assert lines == {2}


def test_every_stmt_node_is_reachable_from_entry():
    cfg = cfg_of("""\
        def f(x):
            try:
                if x:
                    return probe(x)
                for item in x:
                    if item:
                        break
            except ValueError:
                raise
            finally:
                x.close()
            return x
    """)
    reachable = cfg.reachable()
    for node in cfg.stmt_nodes():
        assert node.index in reachable, node.base_label()


def test_functions_of_returns_methods_in_source_order():
    tree = ast.parse(textwrap.dedent("""\
        class C:
            def b(self):
                pass

            def a(self):
                pass

        def top():
            pass
    """))
    assert [fn.name for fn in functions_of(tree)] == ["b", "a", "top"]
