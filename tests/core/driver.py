"""A logical (timeless) scheduler driver for tests.

Runs a set of transactions through a scheduler without the discrete-event
machine: logical time advances by one unit per scheduler interaction, each
granted step is executed instantly (with per-object weight-adjustment
calls), and locks are held to commit.  The driver detects livelock (a full
pass over all live transactions without any progress) and records a
:class:`repro.core.history.History` for serializability checking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.history import History
from repro.core.schedulers.base import Decision, Scheduler
from repro.core.transaction import TransactionRuntime, TransactionSpec


class DriverResult:
    def __init__(self) -> None:
        self.history = History()
        self.commit_order: List[int] = []
        self.admission_rejections: Dict[int, int] = {}
        self.lock_delays: Dict[int, int] = {}
        self.ticks = 0


def run_logical(scheduler: Scheduler, specs: Sequence[TransactionSpec],
                max_passes: int = 10_000) -> DriverResult:
    """Drive every spec to commit; raises AssertionError on livelock."""
    result = DriverResult()
    runtimes = [TransactionRuntime(spec) for spec in specs]
    admitted: Dict[int, bool] = {rt.tid: False for rt in runtimes}
    grant_times: Dict[int, List[Tuple[int, int, object, float]]] = {
        rt.tid: [] for rt in runtimes}
    now = 0.0

    live = list(runtimes)
    passes_without_progress = 0
    while live:
        progressed = False
        for txn in list(live):
            now += 1.0
            result.ticks += 1
            if not admitted[txn.tid]:
                response = scheduler.admit(txn, now)
                if not response.admitted:
                    result.admission_rejections[txn.tid] = (
                        result.admission_rejections.get(txn.tid, 0) + 1)
                    txn.reset_for_retry()
                    continue
                admitted[txn.tid] = True
                txn.start_time = now
                progressed = True
                continue
            if txn.finished_all_steps:
                scheduler.commit(txn, now)
                txn.commit_time = now
                for tid, step_index, mode, granted_at in grant_times[txn.tid]:
                    result.history.record(
                        tid, step_index, mode, granted_at, now)
                result.commit_order.append(txn.tid)
                live.remove(txn)
                progressed = True
                continue
            response = scheduler.request_lock(txn, now)
            if response.decision is Decision.GRANT:
                step = txn.step()
                grant_times[txn.tid].append(
                    (txn.tid, step.partition, step.mode, now))
                whole, frac = int(step.cost), step.cost - int(step.cost)
                for _ in range(whole):
                    scheduler.object_processed(txn)
                if frac:
                    txn.note_object_processed(0)  # no-op placeholder
                txn.advance_step()
                progressed = True
            else:
                result.lock_delays[txn.tid] = (
                    result.lock_delays.get(txn.tid, 0) + 1)
        if progressed:
            passes_without_progress = 0
        else:
            passes_without_progress += 1
            if passes_without_progress >= 3:
                stuck = sorted(t.tid for t in live)
                raise AssertionError(
                    f"{scheduler.name}: no progress possible; stuck "
                    f"transactions {stuck} (deadlock or livelock)")
        if result.ticks > max_passes:
            raise AssertionError(f"{scheduler.name}: exceeded {max_passes} ticks")
    return result
