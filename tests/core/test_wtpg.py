"""Unit tests for the WTPG, anchored on the paper's Figure 2 example."""

import pytest

from repro.core import WTPG
from repro.errors import WTPGError


def figure2_wtpg():
    """The WTPG of Figure 2-(a): T1, T2, T3 just started.

    w(T0->T1)=5, w(T0->T2)=2, w(T0->T3)=4; pair (T1,T2) with
    w(T1->T2)=1, w(T2->T1)=1; pair (T2,T3) with w(T2->T3)=4, w(T3->T2)=2.
    """
    g = WTPG()
    g.add_transaction(1, 5)
    g.add_transaction(2, 2)
    g.add_transaction(3, 4)
    e12 = g.ensure_pair(1, 2)
    e12.raise_weight_to(2, 1)
    e12.raise_weight_to(1, 1)
    e23 = g.ensure_pair(2, 3)
    e23.raise_weight_to(3, 4)
    e23.raise_weight_to(2, 2)
    return g


class TestNodes:
    def test_add_and_contains(self):
        g = WTPG()
        g.add_transaction(7, 3.0)
        assert 7 in g
        assert len(g) == 1
        assert g.source_weight(7) == 3.0

    def test_duplicate_node_rejected(self):
        g = WTPG()
        g.add_transaction(1, 1)
        with pytest.raises(WTPGError):
            g.add_transaction(1, 2)

    def test_negative_weight_rejected(self):
        g = WTPG()
        with pytest.raises(WTPGError):
            g.add_transaction(1, -1)

    def test_remove_drops_pairs(self):
        g = figure2_wtpg()
        g.remove_transaction(2)
        assert 2 not in g
        assert g.conflict_neighbors(1) == set()
        assert g.conflict_neighbors(3) == set()

    def test_remove_unknown_rejected(self):
        with pytest.raises(WTPGError):
            WTPG().remove_transaction(5)

    def test_decrement_source_clamps_at_zero(self):
        g = WTPG()
        g.add_transaction(1, 1.5)
        g.decrement_source(1)
        assert g.source_weight(1) == 0.5
        g.decrement_source(1)
        assert g.source_weight(1) == 0.0


class TestPairEdges:
    def test_ensure_pair_idempotent(self):
        g = figure2_wtpg()
        edge = g.ensure_pair(1, 2)
        assert edge is g.pair(2, 1)

    def test_self_pair_rejected(self):
        g = WTPG()
        g.add_transaction(1, 1)
        with pytest.raises(WTPGError):
            g.ensure_pair(1, 1)

    def test_weights_take_max(self):
        g = figure2_wtpg()
        edge = g.pair(2, 3)
        edge.raise_weight_to(3, 2)   # smaller: ignored
        assert edge.weight_to(3) == 4
        edge.raise_weight_to(3, 9)   # larger: adopted
        assert edge.weight_to(3) == 9

    def test_figure2_weights(self):
        g = figure2_wtpg()
        assert g.pair(2, 3).weight_to(3) == 4
        assert g.pair(2, 3).weight_to(2) == 2
        assert g.pair(1, 2).weight_to(2) == 1

    def test_conflict_neighbors(self):
        g = figure2_wtpg()
        assert g.conflict_neighbors(2) == {1, 3}
        assert g.conflict_neighbors(1) == {2}


class TestResolution:
    def test_resolve_sets_orientation(self):
        g = figure2_wtpg()
        g.resolve(1, 2)
        assert g.orientation(1, 2) == (1, 2)
        assert g.orientation(2, 1) == (1, 2)

    def test_resolve_idempotent_same_direction(self):
        g = figure2_wtpg()
        g.resolve(1, 2)
        g.resolve(1, 2)  # no error
        assert g.orientation(1, 2) == (1, 2)

    def test_resolve_flip_rejected(self):
        g = figure2_wtpg()
        g.resolve(1, 2)
        with pytest.raises(WTPGError):
            g.resolve(2, 1)

    def test_resolve_without_pair_rejected(self):
        g = figure2_wtpg()
        with pytest.raises(WTPGError):
            g.resolve(1, 3)  # no conflicting edge between T1 and T3

    def test_predecessors_successors(self):
        g = figure2_wtpg()
        g.resolve(1, 2)
        g.resolve(3, 2)
        assert g.predecessors(2) == {1, 3}
        assert g.successors(1) == {2}
        assert g.successors(2) == set()

    def test_ancestors_descendants_transitive(self):
        g = WTPG()
        for tid in (1, 2, 3, 4):
            g.add_transaction(tid, 0)
        for a, b in ((1, 2), (2, 3), (3, 4)):
            g.ensure_pair(a, b)
            g.resolve(a, b)
        assert g.ancestors(4) == {1, 2, 3}
        assert g.descendants(1) == {2, 3, 4}
        assert g.ancestors(1) == set()


class TestCycles:
    def make_triangle(self):
        g = WTPG()
        for tid in (1, 2, 3):
            g.add_transaction(tid, 1)
        for a, b in ((1, 2), (2, 3), (1, 3)):
            g.ensure_pair(a, b)
        return g

    def test_no_cycle_initially(self):
        assert not self.make_triangle().has_precedence_cycle()

    def test_cycle_detected(self):
        g = self.make_triangle()
        g.resolve(1, 2)
        g.resolve(2, 3)
        g.resolve(3, 1)
        assert g.has_precedence_cycle()

    def test_acyclic_triangle(self):
        g = self.make_triangle()
        g.resolve(1, 2)
        g.resolve(2, 3)
        g.resolve(1, 3)
        assert not g.has_precedence_cycle()

    def test_critical_path_of_cycle_raises(self):
        g = self.make_triangle()
        g.resolve(1, 2)
        g.resolve(2, 3)
        g.resolve(3, 1)
        with pytest.raises(WTPGError):
            g.critical_path_length()


class TestCriticalPath:
    def test_empty_graph(self):
        assert WTPG().critical_path_length() == 0.0

    def test_isolated_nodes_take_max_source(self):
        g = WTPG()
        g.add_transaction(1, 3)
        g.add_transaction(2, 8)
        assert g.critical_path_length() == 8

    def test_figure2_b_optimal_resolution_length_6(self):
        # W = {T1->T2, T3->T2}: critical path T0->T1->T2 of length 6.
        g = figure2_wtpg()
        g.resolve(1, 2)
        g.resolve(3, 2)
        length, path = g.critical_path()
        assert length == 6
        assert path == [1, 2]

    def test_figure2_c_chain_of_blocking_length_10(self):
        # {T1->T2->T3}: critical path length 10 (the bad schedule).
        g = figure2_wtpg()
        g.resolve(1, 2)
        g.resolve(2, 3)
        assert g.critical_path_length() == 10

    def test_unresolved_pairs_are_ignored(self):
        g = figure2_wtpg()
        # Nothing resolved: only source weights count.
        assert g.critical_path_length() == 5

    def test_matches_networkx_longest_path(self):
        import networkx as nx

        g = WTPG()
        weights = {1: 5, 2: 2, 3: 4, 4: 7, 5: 1}
        for tid, w in weights.items():
            g.add_transaction(tid, w)
        edges = [(1, 2, 3.0), (2, 4, 2.5), (3, 4, 6.0), (1, 5, 0.5)]
        for a, b, w in edges:
            pair = g.ensure_pair(a, b)
            pair.raise_weight_to(b, w)
            g.resolve(a, b)

        dag = nx.DiGraph()
        dag.add_node("T0")
        dag.add_node("Tf")
        for tid, w in weights.items():
            dag.add_edge("T0", tid, weight=w)
            dag.add_edge(tid, "Tf", weight=0.0)
        for a, b, w in edges:
            dag.add_edge(a, b, weight=w)
        expected = nx.dag_longest_path_length(dag, weight="weight")
        assert g.critical_path_length() == pytest.approx(expected)


class TestCopy:
    def test_copy_is_independent(self):
        g = figure2_wtpg()
        clone = g.copy()
        clone.resolve(1, 2)
        clone.decrement_source(1, 5)
        clone.remove_transaction(3)
        assert g.orientation(1, 2) is None
        assert g.source_weight(1) == 5
        assert 3 in g

    def test_copy_preserves_weights_and_resolutions(self):
        g = figure2_wtpg()
        g.resolve(3, 2)
        clone = g.copy()
        assert clone.orientation(2, 3) == (3, 2)
        assert clone.pair(1, 2).weight_to(2) == 1
        assert clone.critical_path_length() == g.critical_path_length()

    def test_repr_smoke(self):
        g = figure2_wtpg()
        g.resolve(1, 2)
        text = repr(g)
        assert "T1->T2" in text and "(T2,T3)" in text
