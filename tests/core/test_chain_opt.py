"""Tests for the chain-WTPG critical-path optimiser.

The key property: `optimise_chain` (the O(N^2) Pareto DP used by the CHAIN
scheduler) must equal `brute_force_chain` (exhaustive enumeration) on every
instance — weights, fixed orientations and absent edges included.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ChainPair, chain_critical_path, optimise_chain
from repro.core.chain_opt import DOWN, UP, brute_force_chain
from repro.errors import WTPGError


def figure2_chain():
    """Figure 2-(a) as a chain: nodes [T1, T2, T3].

    r = [5, 2, 4]; pair(T1,T2): down=w(T1->T2)=1, up=w(T2->T1)=1;
    pair(T2,T3): down=w(T2->T3)=4, up=w(T3->T2)=2.
    """
    return [5, 2, 4], [ChainPair(down=1, up=1), ChainPair(down=4, up=2)]


class TestChainCriticalPath:
    def test_figure2_optimal_orientation_length_6(self):
        r, pairs = figure2_chain()
        # W = {T1->T2, T3->T2}  =>  (down, up)
        assert chain_critical_path(r, pairs, [DOWN, UP]) == 6

    def test_figure2_chain_of_blocking_length_10(self):
        r, pairs = figure2_chain()
        # {T1->T2->T3}  =>  (down, down)
        assert chain_critical_path(r, pairs, [DOWN, DOWN]) == 10

    def test_figure2_all_up_length_7(self):
        r, pairs = figure2_chain()
        # T3->T2->T1: dist(T2)=max(2,4+2)=6, dist(T1)=max(5,6+1)=7.
        assert chain_critical_path(r, pairs, [UP, UP]) == 7

    def test_empty_chain(self):
        assert chain_critical_path([], [], []) == 0.0

    def test_single_node(self):
        assert chain_critical_path([3.5], [], []) == 3.5

    def test_absent_edge_splits_runs(self):
        r = [10, 1, 1]
        pairs = [None, ChainPair(down=5, up=5)]
        assert chain_critical_path(r, pairs, [None, DOWN]) == 10

    def test_orientation_length_mismatch_rejected(self):
        r, pairs = figure2_chain()
        with pytest.raises(WTPGError):
            chain_critical_path(r, pairs, [DOWN])

    def test_missing_orientation_rejected(self):
        r, pairs = figure2_chain()
        with pytest.raises(WTPGError):
            chain_critical_path(r, pairs, [DOWN, None])

    def test_orientation_against_fixed_rejected(self):
        r = [1, 1]
        pairs = [ChainPair(down=1, up=1, fixed=DOWN)]
        with pytest.raises(WTPGError):
            chain_critical_path(r, pairs, [UP])

    def test_negative_weights_rejected(self):
        with pytest.raises(WTPGError):
            ChainPair(down=-1, up=0)
        with pytest.raises(WTPGError):
            chain_critical_path([-1], [], [])


class TestOptimiseChain:
    def test_figure2_optimum_is_6(self):
        r, pairs = figure2_chain()
        length, orientations = optimise_chain(r, pairs)
        assert length == 6
        assert chain_critical_path(r, pairs, orientations) == 6

    def test_empty_and_singleton(self):
        assert optimise_chain([], []) == (0.0, [])
        length, orientations = optimise_chain([4.0], [])
        assert length == 4.0
        assert orientations == []

    def test_fixed_edges_are_respected(self):
        r, pairs = figure2_chain()
        forced = [ChainPair(1, 1, fixed=DOWN), ChainPair(4, 2, fixed=DOWN)]
        length, orientations = optimise_chain(r, forced)
        assert orientations == [DOWN, DOWN]
        assert length == 10  # no freedom left: the bad schedule

    def test_partially_fixed(self):
        r, pairs = figure2_chain()
        partial = [ChainPair(1, 1, fixed=DOWN), ChainPair(4, 2)]
        length, orientations = optimise_chain(r, partial)
        assert orientations[0] == DOWN
        assert length == 6  # still reaches the optimum via (down, up)

    def test_absent_edges(self):
        r = [5, 2, 4]
        pairs = [None, ChainPair(down=4, up=2)]
        length, orientations = optimise_chain(r, pairs)
        assert orientations[0] is None
        # Components {T1} and {T2,T3}: best is T3->T2 -> max(5, 2+... )
        assert length == chain_critical_path(r, pairs, orientations)
        assert length == 6  # T3->T2: dist = max(5, 4, 2+2=4, ...) hmm

    def test_long_uniform_chain_matches_brute_force(self):
        r = [2.0] * 9
        pairs = [ChainPair(down=1, up=1) for _ in range(8)]
        expected, _ = brute_force_chain(r, pairs)
        got, orientations = optimise_chain(r, pairs)
        assert got == expected
        assert chain_critical_path(r, pairs, orientations) == got

    def test_mismatched_pairs_length_rejected(self):
        with pytest.raises(WTPGError):
            optimise_chain([1, 2], [])


weights = st.floats(min_value=0, max_value=20, allow_nan=False,
                    allow_infinity=False)


@st.composite
def chain_instances(draw, max_nodes=7):
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    r = [draw(weights) for _ in range(n)]
    pairs = []
    for _ in range(max(0, n - 1)):
        kind = draw(st.sampled_from(["free", "free", "fixed_down", "fixed_up",
                                     "absent"]))
        if kind == "absent":
            pairs.append(None)
        else:
            fixed = {"free": None, "fixed_down": DOWN, "fixed_up": UP}[kind]
            pairs.append(ChainPair(draw(weights), draw(weights), fixed=fixed))
    return r, pairs


@settings(max_examples=300, deadline=None)
@given(chain_instances())
def test_dp_matches_brute_force(instance):
    """The Pareto DP is exactly optimal on every random instance."""
    r, pairs = instance
    expected, _ = brute_force_chain(r, pairs)
    got, orientations = optimise_chain(r, pairs)
    assert got == pytest.approx(expected)
    # And the returned orientation really achieves the claimed length.
    if r:
        achieved = chain_critical_path(r, pairs, orientations)
        assert achieved == pytest.approx(got)


@settings(max_examples=100, deadline=None)
@given(chain_instances(max_nodes=10))
def test_optimum_never_exceeds_any_specific_orientation(instance):
    r, pairs = instance
    if not r:
        return
    got, _ = optimise_chain(r, pairs)
    all_down = [None if p is None else (p.fixed or DOWN) for p in pairs]
    all_up = [None if p is None else (p.fixed or UP) for p in pairs]
    assert got <= chain_critical_path(r, pairs, all_down) + 1e-9
    assert got <= chain_critical_path(r, pairs, all_up) + 1e-9


@settings(max_examples=100, deadline=None)
@given(chain_instances(), weights)
def test_optimum_lower_bounded_by_max_source_weight(instance, _):
    r, pairs = instance
    got, _ = optimise_chain(r, pairs)
    assert got >= max(r, default=0.0) - 1e-9
