"""Metamorphic properties of the contention estimator E(q)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import WTPG, estimate_contention
from repro.core.estimator import INFINITE_CONTENTION


@st.composite
def estimation_scenarios(draw, max_nodes=7):
    """A WTPG plus a valid (tid, implied resolutions) request."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    g = WTPG()
    for tid in range(1, n + 1):
        g.add_transaction(tid, draw(st.floats(0, 15)))
    pairs = []
    for a in range(1, n + 1):
        for b in range(a + 1, n + 1):
            if draw(st.booleans()):
                edge = g.ensure_pair(a, b)
                edge.raise_weight_to(b, draw(st.floats(0, 8)))
                edge.raise_weight_to(a, draw(st.floats(0, 8)))
                pairs.append((a, b))
                if draw(st.booleans()):
                    g.resolve(a, b)  # low -> high: acyclic
    requester = draw(st.integers(min_value=1, max_value=n))
    implied = []
    for a, b in pairs:
        edge = g.pair(a, b)
        if edge.resolved:
            continue
        if a == requester and draw(st.booleans()):
            implied.append((a, b))
        elif b == requester and draw(st.booleans()):
            implied.append((b, a))
    return g, requester, implied


@settings(max_examples=200, deadline=None)
@given(estimation_scenarios())
def test_estimate_is_nonnegative_and_graph_untouched(scenario):
    g, tid, implied = scenario
    snapshot = repr(g)
    value = estimate_contention(g, tid, implied)
    assert value >= 0
    assert repr(g) == snapshot  # pure function of the graph


@settings(max_examples=200, deadline=None)
@given(estimation_scenarios())
def test_estimate_bounded_below_by_plain_critical_path(scenario):
    """Granting only ever adds precedence edges, so E(q) >= current CP."""
    g, tid, implied = scenario
    value = estimate_contention(g, tid, implied)
    if value == INFINITE_CONTENTION:
        return
    assert value >= g.critical_path_length() - 1e-9


@settings(max_examples=200, deadline=None)
@given(estimation_scenarios(), st.floats(0.5, 5))
def test_estimate_monotone_in_source_weights(scenario, extra):
    """Inflating any node's remaining work cannot reduce E(q)."""
    g, tid, implied = scenario
    before = estimate_contention(g, tid, implied)
    target = sorted(g.transactions)[0]
    g.set_source_weight(target, g.source_weight(target) + extra)
    after = estimate_contention(g, tid, implied)
    if before == INFINITE_CONTENTION:
        assert after == INFINITE_CONTENTION
    else:
        assert after >= before - 1e-9


@settings(max_examples=200, deadline=None)
@given(estimation_scenarios())
def test_no_implications_equals_before_after_closure_only(scenario):
    """With no implied resolutions, E still resolves crossing pairs but
    never returns less than the plain critical path."""
    g, tid, _ = scenario
    value = estimate_contention(g, tid, [])
    assert value >= g.critical_path_length() - 1e-9


@settings(max_examples=150, deadline=None)
@given(estimation_scenarios())
def test_deadlock_iff_contradiction_or_cycle(scenario):
    """E(q) = inf exactly when applying the resolutions is impossible."""
    g, tid, implied = scenario
    value = estimate_contention(g, tid, implied)
    clone = g.copy()
    impossible = False
    for pred, succ in implied:
        pair = clone.pair(pred, succ)
        if pair.resolved and pair.resolved_to != succ:
            impossible = True
            break
        clone.resolve(pred, succ)
    if not impossible:
        impossible = clone.has_precedence_cycle()
    if impossible:
        assert value == INFINITE_CONTENTION
    else:
        # The before/after closure (step 2) may still force a cycle, so
        # finiteness is not guaranteed — but a finite value implies the
        # direct application was possible.
        assert value >= 0
