"""Tests for lock-table -> WTPG wiring, anchored on Figure 1 / Figure 2.

Figure 1's three transactions (with partitions A=0, B=1, C=2, D=3):
    T1: r1(A:1) -> r1(B:3) -> w1(A:1)
    T2: r2(C:1) -> w2(A:1)
    T3: w3(C:1) -> r3(D:3)
Starting all three must produce exactly the WTPG of Figure 2-(a).
"""

import pytest

from repro.core import LockMode, LockTable, Step, TransactionSpec, WTPG
from repro.core.builder import (add_transaction, conflict_partners,
                                implied_resolutions, remove_transaction)
from repro.errors import WTPGError

A, B, C, D = 0, 1, 2, 3


def figure1_specs():
    t1 = TransactionSpec(1, [Step.read(A, 1), Step.read(B, 3), Step.write(A, 1)])
    t2 = TransactionSpec(2, [Step.read(C, 1), Step.write(A, 1)])
    t3 = TransactionSpec(3, [Step.write(C, 1), Step.read(D, 3)])
    return t1, t2, t3


def start_all():
    table, wtpg = LockTable(), WTPG()
    for spec in figure1_specs():
        table.register(spec)
        add_transaction(wtpg, table, spec)
    return table, wtpg


class TestFigure2Construction:
    def test_source_weights(self):
        _, g = start_all()
        assert g.source_weight(1) == 5
        assert g.source_weight(2) == 2
        assert g.source_weight(3) == 4

    def test_pair_edges_exist_exactly_where_figure2_has_them(self):
        _, g = start_all()
        assert g.pair(1, 2) is not None   # conflict on A
        assert g.pair(2, 3) is not None   # conflict on C
        assert g.pair(1, 3) is None       # no common granule

    def test_figure2_weights(self):
        _, g = start_all()
        # w(T1->T2) = due of T2's conflicting step w2(A:1) = 1.
        assert g.pair(1, 2).weight_to(2) == 1
        # w(T2->T1) = max over T1's conflicting steps (r1(A) due=5,
        # w1(A) due=1) = 5 — "set to the largest values" (Section 3.1).
        assert g.pair(1, 2).weight_to(1) == 5
        # w(T2->T3) = due of T3's conflicting step w3(C:1) = 4.
        assert g.pair(2, 3).weight_to(3) == 4
        # w(T3->T2) = due of T2's conflicting step r2(C:1) = 2.
        assert g.pair(2, 3).weight_to(2) == 2

    def test_nothing_resolved_initially(self):
        _, g = start_all()
        assert len(g.unresolved_pairs()) == 2

    def test_conflict_partners(self):
        table, _ = start_all()
        t1, t2, t3 = figure1_specs()
        assert conflict_partners(table, t2) == {1, 3}
        assert conflict_partners(table, t1) == {2}


class TestWeightsTakeMaxOverStepPairs:
    def test_multiple_conflicting_steps_take_max_due(self):
        table, wtpg = LockTable(), WTPG()
        # T1 reads then writes P0: dues 2 (read, at index 0) and 1 (write).
        t1 = TransactionSpec(1, [Step.read(0, 1), Step.write(0, 1)])
        # T2 writes P0: its X conflicts with both of T1's steps.
        t2 = TransactionSpec(2, [Step.write(0, 4)])
        for spec in (t1, t2):
            table.register(spec)
            add_transaction(wtpg, table, spec)
        # w(T2->T1) = max(due(r)=2, due(w)=1) = 2.
        assert wtpg.pair(1, 2).weight_to(1) == 2
        # w(T1->T2) = due of T2's write = 4 (same for both conflicts).
        assert wtpg.pair(1, 2).weight_to(2) == 4


class TestHoldersForceResolution:
    def test_pair_preresolved_when_other_holds_conflicting_lock(self):
        table, wtpg = LockTable(), WTPG()
        t1 = TransactionSpec(1, [Step.write(0, 2)])
        table.register(t1)
        add_transaction(wtpg, table, t1)
        table.grant(1, 0)  # T1 now holds X on P0

        t2 = TransactionSpec(2, [Step.read(0, 1)])
        table.register(t2)
        add_transaction(wtpg, table, t2)
        # T1 must commit before T2 can read P0.
        assert wtpg.orientation(1, 2) == (1, 2)

    def test_pending_conflict_does_not_force(self):
        table, wtpg = LockTable(), WTPG()
        t1 = TransactionSpec(1, [Step.write(0, 2)])
        table.register(t1)
        add_transaction(wtpg, table, t1)
        t2 = TransactionSpec(2, [Step.read(0, 1)])
        table.register(t2)
        add_transaction(wtpg, table, t2)
        assert wtpg.orientation(1, 2) is None


class TestImpliedResolutions:
    def test_grant_implies_order_against_pending_conflicts(self):
        table, g = start_all()
        # Granting T2's X on A implies T2 -> T1 (T1 has pending r/w on A).
        implied = implied_resolutions(table, g, 2, A, LockMode.EXCLUSIVE)
        assert implied == ((2, 1),)

    def test_granted_locks_do_not_reappear(self):
        table, g = start_all()
        table.grant(1, 0)  # T1 holds S on A
        implied = implied_resolutions(table, g, 2, A, LockMode.EXCLUSIVE)
        # T1's remaining pending declaration on A (the write) still counts.
        assert implied == ((2, 1),)
        table.grant(1, 2)  # T1 now also holds X on A
        assert implied_resolutions(table, g, 2, A, LockMode.EXCLUSIVE) == ()

    def test_shared_request_does_not_imply_against_shared(self):
        table, wtpg = LockTable(), WTPG()
        for tid in (1, 2):
            spec = TransactionSpec(tid, [Step.read(0, 1)])
            table.register(spec)
            add_transaction(wtpg, table, spec)
        assert implied_resolutions(table, wtpg, 1, 0, LockMode.SHARED) == ()

    def test_deterministic_order(self):
        table, wtpg = LockTable(), WTPG()
        for tid in (5, 3, 8):
            spec = TransactionSpec(tid, [Step.write(0, 1)])
            table.register(spec)
            add_transaction(wtpg, table, spec)
        implied = implied_resolutions(table, wtpg, 5, 0, LockMode.EXCLUSIVE)
        assert implied == ((5, 3), (5, 8))


class TestRemoval:
    def test_remove_transaction_clears_both_structures(self):
        table, g = start_all()
        remove_transaction(g, table, 2)
        assert 2 not in g
        assert not table.is_registered(2)
        assert g.pair(1, 2) is None

    def test_add_requires_registration(self):
        table, g = LockTable(), WTPG()
        spec = TransactionSpec(1, [Step.read(0, 1)])
        with pytest.raises(WTPGError):
            add_transaction(g, table, spec)
