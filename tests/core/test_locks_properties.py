"""Property-based tests of the lock table under random operation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import LockMode, LockTable, Step, TransactionSpec
from repro.errors import LockTableError


@st.composite
def table_scripts(draw):
    """A random sequence of register / grant / unregister operations."""
    script = []
    num_txns = draw(st.integers(min_value=1, max_value=6))
    for tid in range(1, num_txns + 1):
        steps = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            partition = draw(st.integers(min_value=0, max_value=3))
            write = draw(st.booleans())
            cost = draw(st.integers(min_value=1, max_value=4))
            steps.append(Step.write(partition, cost) if write
                         else Step.read(partition, cost))
        script.append(("register", TransactionSpec(tid, steps)))
        for index in range(len(steps)):
            if draw(st.booleans()):
                script.append(("grant", (tid, index)))
        if draw(st.booleans()):
            script.append(("unregister", tid))
    return script


def apply_script(script):
    table = LockTable()
    alive = {}
    for op, payload in script:
        if op == "register":
            table.register(payload)
            alive[payload.tid] = payload
        elif op == "grant":
            tid, index = payload
            if tid in alive:
                table.grant(tid, index)
        elif op == "unregister":
            if payload in alive:
                table.unregister(payload)
                del alive[payload]
    return table, alive


@settings(max_examples=150, deadline=None)
@given(table_scripts())
def test_partition_entries_match_by_txn_view(script):
    """Every declaration is reachable both per-partition and per-txn."""
    table, alive = apply_script(script)
    assert table.active_transactions == set(alive)
    for tid, spec in alive.items():
        decls = table.declarations_of(tid)
        assert len(decls) == len(spec.steps)
        pending = set(table.pending_of(tid))
        granted = set(table.granted_of(tid))
        assert pending | granted == set(decls)
        assert not pending & granted


@settings(max_examples=150, deadline=None)
@given(table_scripts())
def test_granted_conflicts_visible_as_holders(script):
    """conflicting_holders sees exactly other txns' conflicting grants."""
    table, alive = apply_script(script)
    for tid, spec in alive.items():
        for step in spec.steps:
            holders = table.conflicting_holders(tid, step.partition,
                                                step.mode)
            assert tid not in holders
            for other in holders:
                held = table.held_mode(other, step.partition)
                assert held is not None
                assert held.conflicts_with(step.mode)


@settings(max_examples=150, deadline=None)
@given(table_scripts())
def test_conflict_counts_are_symmetric(script):
    """If decl A counts decl B as a conflict, B counts A too (pending)."""
    table, alive = apply_script(script)
    pending = [d for tid in alive for d in table.pending_of(tid)]
    for a in pending:
        for b in pending:
            if a.tid == b.tid or a.partition != b.partition:
                continue
            assert a.mode.conflicts_with(b.mode) == \
                b.mode.conflicts_with(a.mode)


@settings(max_examples=150, deadline=None)
@given(table_scripts())
def test_unregister_leaves_no_residue(script):
    table, alive = apply_script(script)
    for tid in list(alive):
        table.unregister(tid)
    assert table.active_transactions == set()
    assert table.snapshot() == {}


@settings(max_examples=100, deadline=None)
@given(table_scripts(), st.integers(min_value=0, max_value=4))
def test_k_violation_matches_bruteforce_count(script, k):
    table, alive = apply_script(script)
    pending = [d for tid in alive for d in table.pending_of(tid)]
    expected = any(
        sum(1 for other in pending
            if other.tid != decl.tid
            and other.partition == decl.partition
            and other.mode.conflicts_with(decl.mode)) > k
        for decl in pending)
    assert table.k_conflict_violated(k) == expected
