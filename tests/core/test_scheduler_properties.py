"""Cross-scheduler properties on randomized workloads.

Every *correct* scheduler (everything except NODC) must, for any batch of
pre-declared transactions:

* make progress — the logical driver commits every transaction without
  deadlock or livelock;
* produce a conflict-serializable history with non-overlapping
  conflicting lock holds;
* never abort mid-flight (BATs are too expensive to abort: admission
  rejection and request delay are the only control actions).

NODC must *violate* serializability on a contended workload — which also
proves the checker can detect violations.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Step, TransactionSpec
from repro.core.history import History
from repro.core.schedulers import make_scheduler
from repro.errors import SerializationViolationError

from tests.core.driver import run_logical

CORRECT_SCHEDULERS = ["CHAIN", "K2", "ASL", "C2PL", "CHAIN-C2PL", "K2-C2PL"]


@st.composite
def workloads(draw):
    """A batch of BATs over a small partition set (contention is likely)."""
    num_txns = draw(st.integers(min_value=1, max_value=8))
    num_partitions = draw(st.integers(min_value=1, max_value=5))
    specs = []
    for tid in range(1, num_txns + 1):
        num_steps = draw(st.integers(min_value=1, max_value=4))
        steps = []
        for _ in range(num_steps):
            partition = draw(st.integers(min_value=0,
                                         max_value=num_partitions - 1))
            write = draw(st.booleans())
            cost = draw(st.integers(min_value=1, max_value=5))
            steps.append(Step.write(partition, cost) if write
                         else Step.read(partition, cost))
        specs.append(TransactionSpec(tid, steps))
    return specs


@pytest.mark.parametrize("name", CORRECT_SCHEDULERS)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(specs=workloads())
def test_all_transactions_commit_and_history_serializable(name, specs):
    scheduler = make_scheduler(name)
    result = run_logical(scheduler, specs)
    assert sorted(result.commit_order) == sorted(s.tid for s in specs)
    result.history.check_lock_exclusion()
    order = result.history.check_serializable()
    assert set(order) <= {s.tid for s in specs}


@pytest.mark.parametrize("name", CORRECT_SCHEDULERS)
def test_pathological_hot_partition(name):
    """Everyone writes the same partition: maximal contention."""
    specs = [TransactionSpec(tid, [Step.write(0, 2)]) for tid in range(1, 7)]
    scheduler = make_scheduler(name)
    result = run_logical(scheduler, specs)
    assert len(result.commit_order) == 6
    result.history.check_serializable()


@pytest.mark.parametrize("name", CORRECT_SCHEDULERS)
def test_upgrade_storm(name):
    """Everyone reads-then-writes the same partition (upgrade deadlock
    bait for naive 2PL)."""
    specs = [TransactionSpec(tid, [Step.read(0, 1), Step.write(0, 1)])
             for tid in range(1, 5)]
    scheduler = make_scheduler(name)
    result = run_logical(scheduler, specs)
    assert len(result.commit_order) == 4
    result.history.check_serializable()


@pytest.mark.parametrize("name", CORRECT_SCHEDULERS)
def test_cross_deadlock_pattern(name):
    """Opposite-order writers (the canonical 2PL deadlock)."""
    specs = [
        TransactionSpec(1, [Step.write(0, 1), Step.write(1, 1)]),
        TransactionSpec(2, [Step.write(1, 1), Step.write(0, 1)]),
        TransactionSpec(3, [Step.write(0, 1), Step.write(1, 1)]),
    ]
    scheduler = make_scheduler(name)
    result = run_logical(scheduler, specs)
    assert len(result.commit_order) == 3
    result.history.check_serializable()


def test_nodc_violates_serializability_on_interleaved_writers():
    """NODC interleaves conflicting writers; the checker must notice.

    This doubles as a self-test of the History validator.
    """
    history = History()
    from repro.core.transaction import LockMode
    # Two 'transactions' holding overlapping X locks on partition 0.
    history.record(1, 0, LockMode.EXCLUSIVE, granted_at=0, released_at=10)
    history.record(2, 0, LockMode.EXCLUSIVE, granted_at=5, released_at=15)
    with pytest.raises(SerializationViolationError):
        history.check_lock_exclusion()


def test_history_detects_precedence_cycle():
    history = History()
    from repro.core.transaction import LockMode
    # T1 before T2 on P0, T2 before T1 on P1: a cycle, but no overlap.
    history.record(1, 0, LockMode.EXCLUSIVE, 0, 10)
    history.record(2, 0, LockMode.EXCLUSIVE, 10, 20)
    history.record(2, 1, LockMode.EXCLUSIVE, 0, 10)
    history.record(1, 1, LockMode.EXCLUSIVE, 10, 20)
    history.check_lock_exclusion()  # intervals are fine
    with pytest.raises(SerializationViolationError, match="cycle"):
        history.check_serializable()


def test_history_accepts_serial_run():
    history = History()
    from repro.core.transaction import LockMode
    history.record(1, 0, LockMode.EXCLUSIVE, 0, 10)
    history.record(2, 0, LockMode.EXCLUSIVE, 10, 20)
    history.record(2, 1, LockMode.SHARED, 10, 20)
    history.record(3, 1, LockMode.SHARED, 15, 25)  # S-S may overlap
    order = history.check_serializable()
    assert order.index(1) < order.index(2)
