"""Tests for the appendix Lcomp/Rcomp port.

Three-way equivalence: on fully free chains, the appendix algorithm, the
production Pareto DP (`optimise_chain`) and exhaustive enumeration must
all report the same shortest critical path.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ChainPair, optimise_chain
from repro.core.appendix import (Triplet, appendix_shortest_critical_path,
                                 from_chain)
from repro.core.chain_opt import brute_force_chain
from repro.errors import WTPGError


def solve(r, weights):
    pairs = [ChainPair(down=d, up=u) for d, u in weights]
    return appendix_shortest_critical_path(*from_chain(r, pairs)), pairs


class TestBasics:
    def test_empty_and_singleton(self):
        assert appendix_shortest_critical_path([0.0], [0.0], [0.0]) == 0.0
        assert appendix_shortest_critical_path([0.0, 7.0],
                                               [0.0, 0.0], [0.0, 0.0]) == 7.0

    def test_two_nodes(self):
        # min(max(r1+a2, r2), max(r2+b2, r1))
        got, _ = solve([2, 5], [(4, 1)])
        assert got == min(max(2 + 4, 5), max(5 + 1, 2)) == 6

    def test_figure2_chain(self):
        # Figure 2-(a): r = [5, 2, 4]; (T1,T2): down 1 / up 1;
        # (T2,T3): down 4 / up 2.  Optimal critical path is 6.
        got, _ = solve([5, 2, 4], [(1, 1), (4, 2)])
        assert got == 6

    def test_example_4_1_g24(self):
        """Figure 11 / Example 4.2: S(2,4) has critical path 6.

        G(2,4) per Example 4.1: R[3].crit = 6 beats L[3].crit = 8; the
        weights below realise those numbers (r2=2, r3=4, r4=2 with
        a3=4, b3=2, a4=2, b4=2 gives L=8 via n0->n2->n3->n4 and R=6).
        """
        r = [2, 4, 2]
        down_up = [(4, 2), (2, 2)]
        # All-down orientation: dist = max(2, 2+4, 2+4+2) = 8 (L[3] case).
        from repro.core.chain_opt import chain_critical_path, DOWN, UP
        pairs = [ChainPair(*w) for w in down_up]
        assert chain_critical_path(r, pairs, [DOWN, DOWN]) == 8
        # The optimum flips (n2,n3) upwards: {n2<-n3->n4} -> length 6.
        assert chain_critical_path(r, pairs, [UP, DOWN]) == 6
        got, _ = solve(r, down_up)
        assert got == 6

    def test_validation_errors(self):
        with pytest.raises(WTPGError):
            appendix_shortest_critical_path([1.0, 2.0], [0.0], [0.0, 0.0])
        with pytest.raises(WTPGError):
            appendix_shortest_critical_path([0.0, -1.0], [0.0, 0.0],
                                            [0.0, 0.0])

    def test_from_chain_rejects_fixed_or_absent(self):
        with pytest.raises(WTPGError):
            from_chain([1, 2], [None])
        with pytest.raises(WTPGError):
            from_chain([1, 2], [ChainPair(1, 1, fixed="down")])

    def test_triplet_is_frozen(self):
        triplet = Triplet(1.0, 2.0, 3)
        with pytest.raises(AttributeError):
            triplet.curr = 5.0


weights = st.floats(min_value=0, max_value=15, allow_nan=False,
                    allow_infinity=False)


@st.composite
def free_chains(draw, max_nodes=8):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    r = [draw(weights) for _ in range(n)]
    pairs = [ChainPair(draw(weights), draw(weights)) for _ in range(n - 1)]
    return r, pairs


@settings(max_examples=250, deadline=None)
@given(free_chains())
def test_appendix_matches_brute_force(instance):
    r, pairs = instance
    expected, _ = brute_force_chain(r, pairs)
    got = appendix_shortest_critical_path(*from_chain(r, pairs))
    assert got == pytest.approx(expected)


@settings(max_examples=250, deadline=None)
@given(free_chains(max_nodes=12))
def test_appendix_matches_pareto_dp(instance):
    r, pairs = instance
    dp, _ = optimise_chain(r, pairs)
    got = appendix_shortest_critical_path(*from_chain(r, pairs))
    assert got == pytest.approx(dp)


def test_long_chain_smoke():
    import random
    rng = random.Random(99)
    n = 200
    r = [rng.uniform(0, 10) for _ in range(n)]
    pairs = [ChainPair(rng.uniform(0, 5), rng.uniform(0, 5))
             for _ in range(n - 1)]
    dp, _ = optimise_chain(r, pairs)
    got = appendix_shortest_critical_path(*from_chain(r, pairs))
    assert got == pytest.approx(dp)
