"""Scenario tests for CHAIN (CC1), anchored on Example 3.3 of the paper."""

import pytest

from repro.core import Step, TransactionRuntime, TransactionSpec
from repro.core.schedulers import ChainScheduler, Decision

A, B, C, D = 0, 1, 2, 3


def figure1_runtimes():
    t1 = TransactionRuntime(TransactionSpec(
        1, [Step.read(A, 1), Step.read(B, 3), Step.write(A, 1)]))
    t2 = TransactionRuntime(TransactionSpec(
        2, [Step.read(C, 1), Step.write(A, 1)]))
    t3 = TransactionRuntime(TransactionSpec(
        3, [Step.write(C, 1), Step.read(D, 3)]))
    return t1, t2, t3


def admitted_chain():
    sched = ChainScheduler()
    t1, t2, t3 = figure1_runtimes()
    for t in (t1, t2, t3):
        assert sched.admit(t).admitted
    return sched, t1, t2, t3


class TestWComputation:
    def test_w_is_the_optimal_order_of_figure2(self):
        sched, *_ = admitted_chain()
        w = sched.current_w()
        # W = {T1 -> T2, T3 -> T2}: the successor of each pair is T2.
        assert w[frozenset((1, 2))] == 2
        assert w[frozenset((2, 3))] == 2

    def test_w_is_cached_within_keeptime(self):
        sched, *_ = admitted_chain()
        sched.current_w(now=0)
        before = sched.stats.optimizations
        sched.current_w(now=100)
        assert sched.stats.optimizations == before

    def test_w_recomputed_after_keeptime(self):
        sched, *_ = admitted_chain()
        sched.current_w(now=0)
        before = sched.stats.optimizations
        sched.current_w(now=10_000)
        assert sched.stats.optimizations == before + 1

    def test_w_recomputed_after_commit(self):
        sched, t1, t2, t3 = admitted_chain()
        sched.current_w(now=0)
        before = sched.stats.optimizations
        # Run T1 to completion (it is first in W, so everything grants).
        for _ in range(3):
            assert sched.request_lock(t1, now=1).granted
            t1.advance_step()
        sched.commit(t1, now=2)
        sched.current_w(now=3)
        assert sched.stats.optimizations == before + 1


class TestExample33:
    def test_r2c_is_delayed_because_inconsistent_with_w(self):
        """Example 3.3: granting r2(C:1) would resolve (T2,T3) into
        T2 -> T3, inconsistent with W = {..., T3 -> T2}: CHAIN delays."""
        sched, t1, t2, t3 = admitted_chain()
        response = sched.request_lock(t2, now=1)
        assert response.decision is Decision.DELAY
        assert "inconsistent with W" in response.reason

    def test_t1_and_t3_proceed(self):
        sched, t1, t2, t3 = admitted_chain()
        assert sched.request_lock(t1, now=1).granted  # r1(A): T1 before T2 OK
        assert sched.request_lock(t3, now=1).granted  # w3(C): T3 before T2 OK

    def test_t2_proceeds_after_predecessors_commit(self):
        sched, t1, t2, t3 = admitted_chain()
        # Grant T3's w3(C) first: this *resolves* (T2,T3) to T3 -> T2, so
        # later W recomputations must keep it fixed.
        assert sched.request_lock(t3, now=1).granted
        t3.advance_step()
        for txn in (t1, t3):
            while not txn.finished_all_steps:
                assert sched.request_lock(txn, now=1).granted
                txn.advance_step()
            sched.commit(txn, now=2)
        assert sched.request_lock(t2, now=3).granted
        t2.advance_step()
        assert sched.request_lock(t2, now=3).granted

    def test_tie_in_w_can_reorder_unresolved_pairs(self):
        """After T1 commits, the 2-node chain {T2,T3} has two equal-cost
        orders (both critical path 6); W may legitimately flip to
        {T2 -> T3} as the pair was never resolved.  Whichever side W picks
        can proceed — there is never a stall."""
        sched, t1, t2, t3 = admitted_chain()
        while not t1.finished_all_steps:
            assert sched.request_lock(t1, now=1).granted
            t1.advance_step()
        sched.commit(t1, now=2)
        r2 = sched.request_lock(t2, now=3)
        r3 = sched.request_lock(t3, now=3)
        assert r2.granted or r3.granted


class TestChainAdmission:
    def test_conflict_with_chain_middle_rejected(self):
        sched, t1, t2, t3 = admitted_chain()
        # T4 writes C: conflicts with T2 (middle? T2 conflicts with T1 and
        # T3 already, so degree would hit 3) -> reject.
        t4 = TransactionRuntime(TransactionSpec(4, [Step.write(C, 1)]))
        response = sched.admit(t4)
        assert not response.admitted
        assert "chain-form" in response.reason
        assert not sched.table.is_registered(4)
        assert 4 not in sched.wtpg

    def test_conflict_with_chain_end_accepted(self):
        sched, t1, t2, t3 = admitted_chain()
        # T4 reads D: conflicts only with T3 (an endpoint): accepted.
        t4 = TransactionRuntime(TransactionSpec(4, [Step.write(D, 1)]))
        assert sched.admit(t4).admitted

    def test_no_conflict_always_accepted(self):
        sched, *_ = admitted_chain()
        t5 = TransactionRuntime(TransactionSpec(5, [Step.read(9, 2)]))
        assert sched.admit(t5).admitted

    def test_rejected_transaction_can_retry_later(self):
        sched, t1, t2, t3 = admitted_chain()
        t4 = TransactionRuntime(TransactionSpec(4, [Step.write(C, 1)]))
        assert not sched.admit(t4).admitted
        # After T2 commits the chain shrinks and T4 fits.
        for txn in (t1, t3):
            while not txn.finished_all_steps:
                sched.request_lock(txn, now=1)
                txn.advance_step()
            sched.commit(txn, now=1)
        while not t2.finished_all_steps:
            assert sched.request_lock(t2, now=2).granted
            t2.advance_step()
        sched.commit(t2, now=2)
        assert sched.admit(t4).admitted


class TestChainCosts:
    def test_optimization_cost_charged_once_per_recompute(self):
        sched, t1, t2, t3 = admitted_chain()
        first = sched.request_lock(t1, now=1)
        assert first.cpu_cost == pytest.approx(sched.chaintime)
        second = sched.request_lock(t3, now=2)
        assert second.cpu_cost == 0.0  # W reused within keeptime
