"""Unit tests for scheduler plumbing: base classes, ASL, NODC, factory."""

import pytest

from repro.core import Step, TransactionRuntime, TransactionSpec
from repro.core.schedulers import (AtomicStaticLock, CautiousTwoPhaseLock,
                                   ChainC2PL, ChainScheduler, Decision,
                                   KConflictC2PL, KWTPGScheduler,
                                   NoDataContention, make_scheduler)
from repro.core.schedulers.base import ControlSaver
from repro.errors import SchedulerError


def rt(tid, steps):
    return TransactionRuntime(TransactionSpec(tid, steps))


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("CHAIN", ChainScheduler),
        ("K2", KWTPGScheduler),
        ("ASL", AtomicStaticLock),
        ("C2PL", CautiousTwoPhaseLock),
        ("NODC", NoDataContention),
        ("CHAIN-C2PL", ChainC2PL),
        ("K2-C2PL", KConflictC2PL),
    ])
    def test_known_names(self, name, cls):
        assert isinstance(make_scheduler(name), cls)

    def test_case_insensitive(self):
        assert isinstance(make_scheduler("c2pl"), CautiousTwoPhaseLock)

    def test_k2_has_k_2(self):
        assert make_scheduler("K2").k == 2
        assert make_scheduler("K2-C2PL").k == 2

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("OPTIMISTIC")


class TestControlSaver:
    def test_initially_stale(self):
        saver = ControlSaver(5000)
        assert saver.stale(now=0)

    def test_fresh_after_compute_until_keeptime(self):
        saver = ControlSaver(5000)
        saver.mark_computed(1000)
        assert not saver.stale(2000)
        assert not saver.stale(5999)
        assert saver.stale(6000)

    def test_invalidate_forces_staleness(self):
        saver = ControlSaver(5000)
        saver.mark_computed(1000)
        saver.invalidate()
        assert saver.stale(1001)

    def test_zero_keeptime_always_stale(self):
        saver = ControlSaver(0)
        saver.mark_computed(10)
        assert saver.stale(10)

    def test_negative_keeptime_rejected(self):
        with pytest.raises(SchedulerError):
            ControlSaver(-1)


class TestNoDataContention:
    def test_everything_granted(self):
        sched = NoDataContention()
        t1 = rt(1, [Step.write(0, 5)])
        t2 = rt(2, [Step.write(0, 5)])
        assert sched.admit(t1).admitted
        assert sched.admit(t2).admitted
        assert sched.request_lock(t1).granted
        assert sched.request_lock(t2).granted  # conflicting X: still granted
        sched.commit(t1)
        sched.commit(t2)
        assert sched.stats.commits == 2
        assert sched.stats.blocks == 0


class TestAtomicStaticLock:
    def test_admits_when_all_locks_free(self):
        sched = AtomicStaticLock()
        t1 = rt(1, [Step.read(0, 1), Step.write(1, 2)])
        assert sched.admit(t1).admitted
        # All locks are granted atomically at start.
        assert len(sched.table.granted_of(1)) == 2
        assert len(sched.table.pending_of(1)) == 0

    def test_rejects_on_any_conflicting_holder(self):
        sched = AtomicStaticLock()
        t1 = rt(1, [Step.write(5, 1)])
        t2 = rt(2, [Step.read(3, 1), Step.read(5, 1)])
        assert sched.admit(t1).admitted
        response = sched.admit(t2)
        assert not response.admitted
        assert "P5" in response.reason
        # Nothing of T2 leaked into the table.
        assert not sched.table.is_registered(2)

    def test_shared_locks_coexist(self):
        sched = AtomicStaticLock()
        assert sched.admit(rt(1, [Step.read(0, 1)])).admitted
        assert sched.admit(rt(2, [Step.read(0, 1)])).admitted

    def test_self_upgrade_allowed(self):
        sched = AtomicStaticLock()
        assert sched.admit(rt(1, [Step.read(0, 1), Step.write(0, 1)])).admitted

    def test_steps_always_granted_after_admit(self):
        sched = AtomicStaticLock()
        t1 = rt(1, [Step.read(0, 1), Step.write(1, 2)])
        sched.admit(t1)
        assert sched.request_lock(t1).granted
        t1.advance_step()
        assert sched.request_lock(t1).granted

    def test_commit_releases_for_waiters(self):
        sched = AtomicStaticLock()
        t1 = rt(1, [Step.write(0, 1)])
        t2 = rt(2, [Step.write(0, 1)])
        sched.admit(t1)
        assert not sched.admit(t2).admitted
        sched.commit(t1)
        assert sched.admit(t2).admitted

    def test_invariant_violation_raises(self):
        sched = AtomicStaticLock()
        t1 = rt(1, [Step.write(0, 1)])
        # Bypass admit: request without holding is a scheduler bug.
        with pytest.raises(SchedulerError):
            sched.request_lock(t1)


class TestStatsAccounting:
    def test_counters_track_decisions(self):
        sched = CautiousTwoPhaseLock()
        t1 = rt(1, [Step.write(0, 1)])
        t2 = rt(2, [Step.write(0, 1)])
        sched.admit(t1, now=1)
        sched.admit(t2, now=2)
        assert sched.request_lock(t1, now=3).granted
        blocked = sched.request_lock(t2, now=4)
        assert blocked.decision is Decision.BLOCK
        assert sched.stats.grants == 1
        assert sched.stats.blocks == 1
        assert sched.stats.admissions == 2

    def test_cpu_cost_accumulates(self):
        sched = CautiousTwoPhaseLock(ddtime=7.5, admission_time=2.0)
        t1 = rt(1, [Step.write(0, 1)])
        t2 = rt(2, [Step.write(0, 1)])
        sched.admit(t1)
        sched.admit(t2)
        sched.request_lock(t1)
        # Two admission tests (2.0 each) + one deadlock test (7.5).
        assert sched.stats.control_cpu == pytest.approx(11.5)
