"""Tests for the Experiment-4 hybrids CHAIN-C2PL and K2-C2PL."""

import pytest

from repro.core import Step, TransactionRuntime, TransactionSpec
from repro.core.schedulers import ChainC2PL, Decision, KConflictC2PL


def rt(tid, steps):
    return TransactionRuntime(TransactionSpec(tid, steps))


class TestChainC2PL:
    def test_chain_form_admission_enforced(self):
        sched = ChainC2PL()
        # Build a two-node chain on P0, then try to attach to its middle.
        assert sched.admit(rt(1, [Step.write(0, 1), Step.write(1, 1)])).admitted
        assert sched.admit(rt(2, [Step.write(0, 1)])).admitted
        assert sched.admit(rt(3, [Step.write(1, 1)])).admitted
        # T4 conflicting with T1 (which already has degree 2) breaks chain-form.
        response = sched.admit(rt(4, [Step.write(0, 1), Step.write(1, 1)]))
        assert not response.admitted
        assert "chain-form" in response.reason

    def test_granting_is_plain_c2pl_not_weight_guided(self):
        """Unlike CHAIN, CHAIN-C2PL grants first-come-first-served as long
        as no deadlock is predicted — weights are never consulted."""
        sched = ChainC2PL()
        t1 = rt(1, [Step.write(0, 9), Step.write(1, 9)])   # heavy
        t2 = rt(2, [Step.write(0, 1)])                      # light
        sched.admit(t1)
        sched.admit(t2)
        # The heavy transaction asks first and gets the lock: no
        # optimisation ever reorders it.
        assert sched.request_lock(t1).granted
        assert sched.request_lock(t2).decision is Decision.BLOCK

    def test_deadlock_prediction_retained(self):
        sched = ChainC2PL()
        t1 = rt(1, [Step.write(0, 1), Step.write(1, 1)])
        t2 = rt(2, [Step.write(1, 1), Step.write(0, 1)])
        sched.admit(t1)
        sched.admit(t2)
        assert sched.request_lock(t1).granted
        assert sched.request_lock(t2).decision is Decision.DELAY


class TestKConflictC2PL:
    def test_k_admission_enforced(self):
        sched = KConflictC2PL(k=2)
        for tid in (1, 2, 3):
            assert sched.admit(rt(tid, [Step.write(0, 1)])).admitted
        response = sched.admit(rt(4, [Step.write(0, 1)]))
        assert not response.admitted
        assert "K-conflict" in response.reason

    def test_granting_is_plain_c2pl(self):
        sched = KConflictC2PL(k=2)
        t1 = rt(1, [Step.write(0, 9), Step.write(1, 9)])
        t2 = rt(2, [Step.write(0, 1)])
        sched.admit(t1)
        sched.admit(t2)
        assert sched.request_lock(t1).granted  # no E(q) reordering

    def test_k_is_configurable(self):
        sched = KConflictC2PL(k=0)
        assert sched.admit(rt(1, [Step.write(0, 1)])).admitted
        assert not sched.admit(rt(2, [Step.write(0, 1)])).admitted

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            KConflictC2PL(k=-1)

    def test_names_for_reporting(self):
        assert ChainC2PL().name == "CHAIN-C2PL"
        assert KConflictC2PL().name == "K2-C2PL"
