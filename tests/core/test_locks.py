"""Unit tests for the partition lock table with pre-declared locks."""

import pytest

from repro.core import LockMode, LockTable, Step, TransactionSpec
from repro.errors import LockTableError


def spec_rw(tid, partition=0):
    """r(P:1) -> w(P:1): a read-then-upgrade pattern on one partition."""
    return TransactionSpec(tid, [Step.read(partition, 1), Step.write(partition, 1)])


def spec_read(tid, partition=0, cost=1):
    return TransactionSpec(tid, [Step.read(partition, cost)])


def spec_write(tid, partition=0, cost=1):
    return TransactionSpec(tid, [Step.write(partition, cost)])


class TestRegistration:
    def test_register_enters_all_declarations(self):
        table = LockTable()
        table.register(spec_rw(1))
        decls = table.declarations_of(1)
        assert len(decls) == 2
        assert {d.mode for d in decls} == {LockMode.SHARED, LockMode.EXCLUSIVE}

    def test_declarations_carry_due_values(self):
        table = LockTable()
        spec = TransactionSpec(1, [Step.read(0, 1), Step.read(1, 3), Step.write(0, 1)])
        table.register(spec)
        dues = {d.step_index: d.due for d in table.declarations_of(1)}
        assert dues == {0: 5, 1: 4, 2: 1}

    def test_double_register_rejected(self):
        table = LockTable()
        table.register(spec_read(1))
        with pytest.raises(LockTableError):
            table.register(spec_read(1))

    def test_unregister_removes_everything(self):
        table = LockTable()
        table.register(spec_rw(1))
        table.grant(1, 0)
        table.unregister(1)
        assert not table.is_registered(1)
        assert table.active_transactions == set()
        assert table.held_mode(1, 0) is None

    def test_unregister_unknown_rejected(self):
        with pytest.raises(LockTableError):
            LockTable().unregister(42)


class TestGrants:
    def test_grant_converts_declaration_to_hold(self):
        table = LockTable()
        table.register(spec_read(1, partition=5))
        assert table.held_mode(1, 5) is None
        table.grant(1, 0)
        assert table.held_mode(1, 5) is LockMode.SHARED
        assert len(table.pending_of(1)) == 0
        assert len(table.granted_of(1)) == 1

    def test_double_grant_rejected(self):
        table = LockTable()
        table.register(spec_read(1))
        table.grant(1, 0)
        with pytest.raises(LockTableError):
            table.grant(1, 0)

    def test_grant_unknown_step_rejected(self):
        table = LockTable()
        table.register(spec_read(1))
        with pytest.raises(LockTableError):
            table.grant(1, 7)

    def test_upgrade_reports_exclusive(self):
        table = LockTable()
        table.register(spec_rw(1, partition=3))
        table.grant(1, 0)
        assert table.held_mode(1, 3) is LockMode.SHARED
        table.grant(1, 1)
        assert table.held_mode(1, 3) is LockMode.EXCLUSIVE

    def test_holds_mode_semantics(self):
        table = LockTable()
        table.register(spec_write(1, partition=2))
        table.grant(1, 0)
        assert table.holds(1, 2, LockMode.SHARED)      # X covers S
        assert table.holds(1, 2, LockMode.EXCLUSIVE)
        assert not table.holds(1, 3, LockMode.SHARED)


class TestConflictQueries:
    def test_conflicting_holders_sees_other_writers(self):
        table = LockTable()
        table.register(spec_write(1))
        table.register(spec_read(2))
        table.grant(1, 0)
        assert table.conflicting_holders(2, 0, LockMode.SHARED) == {1}

    def test_shared_holders_do_not_conflict_with_shared(self):
        table = LockTable()
        table.register(spec_read(1))
        table.register(spec_read(2))
        table.grant(1, 0)
        assert table.conflicting_holders(2, 0, LockMode.SHARED) == set()
        assert table.conflicting_holders(2, 0, LockMode.EXCLUSIVE) == {1}

    def test_own_holds_never_conflict(self):
        table = LockTable()
        table.register(spec_rw(1))
        table.grant(1, 0)
        assert table.conflicting_holders(1, 0, LockMode.EXCLUSIVE) == set()

    def test_pending_conflicts_is_cq(self):
        table = LockTable()
        table.register(spec_write(1, partition=0))
        table.register(spec_write(2, partition=0))
        table.register(spec_read(3, partition=0))
        cq = table.pending_conflicts(1, 0, LockMode.EXCLUSIVE)
        assert {d.tid for d in cq} == {2, 3}

    def test_pending_conflicts_excludes_granted(self):
        table = LockTable()
        table.register(spec_write(1, partition=0))
        table.register(spec_write(2, partition=0))
        table.grant(2, 0)
        assert table.pending_conflicts(1, 0, LockMode.EXCLUSIVE) == []

    def test_conflicting_transactions_pairs(self):
        table = LockTable()
        t1 = spec_rw(1, partition=0)
        t2 = spec_write(2, partition=0)
        table.register(t1)
        table.register(t2)
        pairs = table.conflicting_transactions(table.declarations_of(1), 2)
        # T1's S and X both conflict with T2's X.
        assert len(pairs) == 2

    def test_conflicting_transactions_no_overlap(self):
        table = LockTable()
        table.register(spec_read(1, partition=0))
        table.register(spec_read(2, partition=1))
        assert table.conflicting_transactions(table.declarations_of(1), 2) == []


class TestKConflict:
    def test_conflict_count_counts_pending_declarations(self):
        table = LockTable()
        table.register(spec_write(1, partition=0))
        table.register(spec_write(2, partition=0))
        table.register(spec_write(3, partition=0))
        decl = table.declarations_of(1)[0]
        assert table.conflict_count(decl) == 2

    def test_conflict_count_ignores_granted(self):
        table = LockTable()
        table.register(spec_write(1, partition=0))
        table.register(spec_write(2, partition=0))
        table.grant(2, 0)
        decl = table.declarations_of(1)[0]
        assert table.conflict_count(decl) == 0

    def test_k_conflict_violated_boundary(self):
        table = LockTable()
        for tid in (1, 2, 3):
            table.register(spec_write(tid, partition=0))
        assert not table.k_conflict_violated(2)
        table.register(spec_write(4, partition=0))
        assert table.k_conflict_violated(2)
        assert not table.k_conflict_violated(3)

    def test_k_conflict_partition_filter(self):
        table = LockTable()
        for tid in (1, 2, 3, 4):
            table.register(spec_write(tid, partition=0))
        assert not table.k_conflict_violated(2, partitions=[1])
        assert table.k_conflict_violated(2, partitions=[0])

    def test_shared_declarations_do_not_count(self):
        table = LockTable()
        for tid in (1, 2, 3, 4, 5):
            table.register(spec_read(tid, partition=0))
        assert not table.k_conflict_violated(0)


class TestSnapshot:
    def test_snapshot_readable(self):
        table = LockTable()
        table.register(spec_rw(1, partition=4))
        table.grant(1, 0)
        snap = table.snapshot()
        assert 4 in snap
        assert snap[4]["granted"] == ["T1.0:S"]
        assert snap[4]["pending"] == ["T1.1:X"]
