"""Unit tests for the BAT transaction model (Section 2.2)."""

import pytest

from repro.core import LockMode, Step, TransactionRuntime, TransactionSpec
from repro.errors import WorkloadError


def figure1_t1():
    """T1: r1(A:1) -> r1(B:3) -> w1(A:1) from Figure 1."""
    return TransactionSpec(1, [Step.read(0, 1), Step.read(1, 3), Step.write(0, 1)])


class TestLockMode:
    def test_shared_does_not_conflict_with_shared(self):
        assert not LockMode.SHARED.conflicts_with(LockMode.SHARED)

    def test_exclusive_conflicts_with_everything(self):
        assert LockMode.EXCLUSIVE.conflicts_with(LockMode.SHARED)
        assert LockMode.EXCLUSIVE.conflicts_with(LockMode.EXCLUSIVE)
        assert LockMode.SHARED.conflicts_with(LockMode.EXCLUSIVE)

    def test_conflict_symmetry(self):
        for a in LockMode:
            for b in LockMode:
                assert a.conflicts_with(b) == b.conflicts_with(a)


class TestStep:
    def test_read_write_constructors(self):
        r = Step.read(3, 5.0)
        w = Step.write(3, 1.0)
        assert r.mode is LockMode.SHARED
        assert w.mode is LockMode.EXCLUSIVE

    def test_declared_cost_defaults_to_actual(self):
        step = Step.read(0, 2.5)
        assert step.declared_cost == 2.5

    def test_declared_cost_can_differ(self):
        step = Step.read(0, 2.0, declared_cost=3.0)
        assert step.cost == 2.0
        assert step.declared_cost == 3.0

    def test_negative_cost_rejected(self):
        with pytest.raises(WorkloadError):
            Step.read(0, -1)
        with pytest.raises(WorkloadError):
            Step.read(0, 1, declared_cost=-0.5)

    def test_fractional_costs_allowed(self):
        # Pattern1 contains w(F1:0.2).
        assert Step.write(0, 0.2).cost == 0.2

    def test_str_uses_paper_notation(self):
        assert str(Step.read(7, 5)) == "r(P7:5)"
        assert str(Step.write(2, 0.2)) == "w(P2:0.2)"


class TestTransactionSpec:
    def test_due_suffix_sums(self):
        # T1 of Figure 1: costs 1, 3, 1 -> dues 5, 4, 1 (Example 3.1 sets
        # w(T0->T1) = 5 at T1's start).
        spec = figure1_t1()
        assert spec.due(0) == 5
        assert spec.due(1) == 4
        assert spec.due(2) == 1

    def test_due_last_step_equals_cost(self):
        spec = figure1_t1()
        assert spec.due(len(spec) - 1) == spec.steps[-1].declared_cost

    def test_declared_total_is_due_zero(self):
        spec = figure1_t1()
        assert spec.declared_total == spec.due(0) == 5

    def test_actual_vs_declared_dues(self):
        spec = TransactionSpec(9, [
            Step.read(0, 2.0, declared_cost=4.0),
            Step.write(1, 1.0, declared_cost=1.5),
        ])
        assert spec.declared_total == 5.5
        assert spec.actual_total == 3.0
        assert spec.due(1) == 1.5
        assert spec.actual_due(1) == 1.0

    def test_empty_steps_rejected(self):
        with pytest.raises(WorkloadError):
            TransactionSpec(1, [])

    def test_partitions_in_first_access_order(self):
        spec = figure1_t1()
        assert spec.partitions == (0, 1)

    def test_strongest_mode(self):
        spec = figure1_t1()
        assert spec.strongest_mode(0) is LockMode.EXCLUSIVE  # r then w
        assert spec.strongest_mode(1) is LockMode.SHARED
        assert spec.strongest_mode(99) is None

    def test_repr_shows_step_sequence(self):
        assert "r(P0:1) -> r(P1:3) -> w(P0:1)" in repr(figure1_t1())


class TestTransactionRuntime:
    def test_initial_remaining_is_declared_total(self):
        rt = TransactionRuntime(figure1_t1(), arrival_time=10.0)
        assert rt.remaining_declared == 5

    def test_object_processing_decrements(self):
        rt = TransactionRuntime(figure1_t1())
        rt.note_object_processed()
        rt.note_object_processed(0.5)
        assert rt.remaining_declared == 3.5

    def test_remaining_clamped_at_zero(self):
        rt = TransactionRuntime(figure1_t1())
        rt.note_object_processed(100)
        assert rt.remaining_declared == 0.0

    def test_step_advancement(self):
        rt = TransactionRuntime(figure1_t1())
        assert rt.step().partition == 0
        rt.advance_step()
        assert rt.step().partition == 1
        rt.advance_step()
        rt.advance_step()
        assert rt.finished_all_steps

    def test_advance_past_end_rejected(self):
        rt = TransactionRuntime(figure1_t1())
        for _ in range(3):
            rt.advance_step()
        with pytest.raises(WorkloadError):
            rt.advance_step()

    def test_reset_for_retry_restores_state_and_counts_attempts(self):
        rt = TransactionRuntime(figure1_t1())
        rt.advance_step()
        rt.note_object_processed(2)
        rt.reset_for_retry()
        assert rt.current_step == 0
        assert rt.remaining_declared == 5
        assert rt.attempts == 1

    def test_response_time(self):
        rt = TransactionRuntime(figure1_t1(), arrival_time=100.0)
        with pytest.raises(WorkloadError):
            rt.response_time()
        rt.commit_time = 350.0
        assert rt.response_time() == 250.0
        assert rt.committed
