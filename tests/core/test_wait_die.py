"""Tests for the Wait-Die timestamp-ordered 2PL baseline."""

import pytest

from repro.core import Step, TransactionRuntime, TransactionSpec
from repro.core.schedulers import Decision, WaitDie, make_scheduler


def rt(tid, steps):
    return TransactionRuntime(TransactionSpec(tid, steps))


class TestWaitDieRules:
    def setup_pair(self):
        """T1 admitted at t=1 (older), T2 at t=2 (younger)."""
        sched = WaitDie()
        t1 = rt(1, [Step.write(0, 1), Step.write(1, 1)])
        t2 = rt(2, [Step.write(0, 1), Step.write(1, 1)])
        sched.admit(t1, now=1)
        sched.admit(t2, now=2)
        return sched, t1, t2

    def test_factory(self):
        assert isinstance(make_scheduler("WAIT-DIE"), WaitDie)

    def test_older_waits_behind_younger_holder(self):
        sched, t1, t2 = self.setup_pair()
        assert sched.request_lock(t2, now=3).granted      # T2 takes P0
        response = sched.request_lock(t1, now=4)
        assert response.decision is Decision.BLOCK
        assert "older waiter" in response.reason

    def test_younger_dies_behind_older_holder(self):
        sched, t1, t2 = self.setup_pair()
        assert sched.request_lock(t1, now=3).granted      # T1 takes P0
        response = sched.request_lock(t2, now=4)
        assert response.decision is Decision.ABORT
        assert "dies" in response.reason

    def test_timestamp_survives_restart(self):
        """A restarted victim keeps its original timestamp, so it ages
        into the right to wait (anti-starvation)."""
        sched, t1, t2 = self.setup_pair()
        sched.request_lock(t1, now=3)
        assert sched.request_lock(t2, now=4).decision is Decision.ABORT
        sched.abort_transaction(t2, now=4)
        t2.reset_for_retry()
        # T2 re-admits much later; its timestamp is still 2.  A brand-new
        # T3 that grabs a partition is younger, so T2 *waits* behind it
        # instead of dying again.
        sched.admit(t2, now=100)
        t3 = rt(3, [Step.write(1, 1)])
        sched.admit(t3, now=101)
        assert sched.request_lock(t3, now=102).granted      # T3 holds P1
        t2.advance_step()  # T2's second step targets P1
        response = sched.request_lock(t2, now=103)
        assert response.decision is Decision.BLOCK
        assert "older waiter" in response.reason

    def test_no_conflict_grants(self):
        sched, t1, t2 = self.setup_pair()
        assert sched.request_lock(t1, now=3).granted
        t1.advance_step()
        assert sched.request_lock(t1, now=4).granted

    def test_commit_clears_timestamp(self):
        sched, t1, t2 = self.setup_pair()
        sched.request_lock(t1, now=3)
        t1.advance_step()
        sched.request_lock(t1, now=4)
        t1.advance_step()
        sched.commit(t1, now=5)
        assert 1 not in sched._timestamps


class TestFullSimulation:
    def test_wait_die_commits_with_serializable_history(self):
        from repro import SimulationParameters, run_simulation
        from repro.workloads import pattern1, pattern1_catalog

        params = SimulationParameters(scheduler="WAIT-DIE",
                                      arrival_rate_tps=0.5,
                                      sim_clocks=200_000, seed=3,
                                      num_partitions=16)
        result = run_simulation(params, pattern1(),
                                catalog=pattern1_catalog(),
                                record_history=True)
        assert result.metrics.commits > 0
        result.history.check_lock_exclusion()
        result.history.check_serializable()

    def test_wait_die_aborts_less_blindly_than_plain_2pl(self):
        """Wait-Die aborts eagerly (on any younger-vs-older conflict),
        plain 2PL only on actual wait-for cycles; on Pattern1 both waste
        work — the point of the comparison."""
        from repro import SimulationParameters, run_simulation
        from repro.workloads import pattern1, pattern1_catalog

        metrics = {}
        for name in ("2PL", "WAIT-DIE"):
            params = SimulationParameters(scheduler=name,
                                          arrival_rate_tps=0.6,
                                          sim_clocks=200_000, seed=3,
                                          num_partitions=16)
            metrics[name] = run_simulation(
                params, pattern1(), catalog=pattern1_catalog()).metrics
        assert metrics["WAIT-DIE"].aborts > 0
        assert metrics["2PL"].aborts > 0
