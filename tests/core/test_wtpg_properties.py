"""Property-based tests on WTPG invariants under random operations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import WTPG
from repro.errors import WTPGError


@st.composite
def wtpg_instances(draw, max_nodes=8):
    """A random WTPG with some pairs, some resolved (acyclically)."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    g = WTPG()
    for tid in range(1, n + 1):
        g.add_transaction(tid, draw(st.floats(0, 20)))
    possible_pairs = [(a, b) for a in range(1, n + 1)
                      for b in range(a + 1, n + 1)]
    for a, b in possible_pairs:
        if not draw(st.booleans()):
            continue
        edge = g.ensure_pair(a, b)
        edge.raise_weight_to(b, draw(st.floats(0, 10)))
        edge.raise_weight_to(a, draw(st.floats(0, 10)))
        # Resolve some pairs low->high only: guaranteed acyclic.
        if draw(st.booleans()):
            g.resolve(a, b)
    return g


@settings(max_examples=150, deadline=None)
@given(wtpg_instances())
def test_critical_path_at_least_max_source_weight(g):
    length = g.critical_path_length()
    assert length >= max((g.source_weight(t) for t in g.transactions),
                         default=0.0) - 1e-9


@settings(max_examples=150, deadline=None)
@given(wtpg_instances())
def test_copy_equivalence(g):
    clone = g.copy()
    assert clone.transactions == g.transactions
    assert clone.critical_path_length() == pytest.approx(
        g.critical_path_length())
    for edge in g.pairs():
        other = clone.pair(edge.a, edge.b)
        assert other is not None and other is not edge
        assert other.resolved_to == edge.resolved_to


@settings(max_examples=150, deadline=None)
@given(wtpg_instances())
def test_removing_a_node_never_increases_critical_path(g):
    """Nodes only contribute paths; dropping one cannot lengthen any."""
    before = g.critical_path_length()
    for tid in sorted(g.transactions):
        clone = g.copy()
        clone.remove_transaction(tid)
        assert clone.critical_path_length() <= before + 1e-9


@settings(max_examples=150, deadline=None)
@given(wtpg_instances(), st.floats(0.1, 5))
def test_raising_a_source_weight_is_monotone(g, extra):
    before = g.critical_path_length()
    tids = sorted(g.transactions)
    if not tids:
        return
    target = tids[0]
    g.set_source_weight(target, g.source_weight(target) + extra)
    assert g.critical_path_length() >= before - 1e-9


@settings(max_examples=150, deadline=None)
@given(wtpg_instances())
def test_resolving_an_edge_is_monotone_on_critical_path(g):
    """Unresolved edges are ignored; fixing one can only add paths."""
    before = g.critical_path_length()
    for edge in g.unresolved_pairs():
        clone = g.copy()
        clone.resolve(edge.a, edge.b)
        if clone.has_precedence_cycle():
            continue
        assert clone.critical_path_length() >= before - 1e-9


@settings(max_examples=150, deadline=None)
@given(wtpg_instances())
def test_ancestors_descendants_are_consistent(g):
    for tid in g.transactions:
        for ancestor in g.ancestors(tid):
            assert tid in g.descendants(ancestor)
        for descendant in g.descendants(tid):
            assert tid in g.ancestors(descendant)


@settings(max_examples=100, deadline=None)
@given(wtpg_instances())
def test_successor_adjacency_matches_pair_scan(g):
    """The incremental _succ/_pred caches agree with a full pair scan."""
    for tid in g.transactions:
        scanned_succ = set()
        scanned_pred = set()
        for other in g.conflict_neighbors(tid):
            edge = g.pair(tid, other)
            if edge.resolved and edge.resolved_to == other:
                scanned_succ.add(other)
            elif edge.resolved and edge.resolved_to == tid:
                scanned_pred.add(other)
        assert g.successors(tid) == scanned_succ
        assert g.predecessors(tid) == scanned_pred


@settings(max_examples=100, deadline=None)
@given(wtpg_instances())
def test_creates_cycle_probe_matches_copy_and_resolve(g):
    """The copy-free cycle probe agrees with actually resolving."""
    tids = sorted(g.transactions)
    for edge in g.unresolved_pairs():
        probe = g.creates_cycle_from(edge.a, [edge.b])
        clone = g.copy()
        clone.resolve(edge.a, edge.b)
        assert probe == clone.has_precedence_cycle()


@settings(max_examples=100, deadline=None)
@given(wtpg_instances())
def test_decrement_source_floors_at_zero(g):
    for tid in sorted(g.transactions):
        g.decrement_source(tid, 1e6)
        assert g.source_weight(tid) == 0.0
