"""Tests for the WTPG/lock-table consistency checker.

Both directions: live schedulers must stay consistent mid-workload under
random operation, and deliberately corrupted structures must be caught.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import LockTable, Step, TransactionSpec, WTPG
from repro.core.builder import add_transaction
from repro.core.invariants import check_consistency, find_violations
from repro.core.schedulers import make_scheduler
from repro.core.schedulers.base import Decision, WTPGScheduler
from repro.core.transaction import TransactionRuntime
from repro.errors import SchedulerError


def consistent_state():
    table, wtpg = LockTable(), WTPG()
    specs = [
        TransactionSpec(1, [Step.read(0, 1), Step.write(0, 1)]),
        TransactionSpec(2, [Step.write(0, 4)]),
        TransactionSpec(3, [Step.read(5, 2)]),
    ]
    for spec in specs:
        table.register(spec)
        add_transaction(wtpg, table, spec)
    return table, wtpg


class TestCleanState:
    def test_fresh_state_is_consistent(self):
        table, wtpg = consistent_state()
        check_consistency(table, wtpg)

    def test_grant_with_resolution_stays_consistent(self):
        table, wtpg = consistent_state()
        table.grant(1, 0)
        wtpg.resolve(1, 2)  # holder-first
        check_consistency(table, wtpg)

    def test_empty_structures_consistent(self):
        check_consistency(LockTable(), WTPG())


class TestDetection:
    def test_missing_node_detected(self):
        table, wtpg = consistent_state()
        wtpg.remove_transaction(3)
        assert any("node set" in p for p in find_violations(table, wtpg))

    def test_missing_pair_edge_detected(self):
        table, wtpg = consistent_state()
        wtpg.remove_transaction(2)
        wtpg.add_transaction(2, 4)  # re-add node but lose its edges
        problems = find_violations(table, wtpg)
        assert any("missing pair edge" in p for p in problems)

    def test_spurious_pair_edge_detected(self):
        table, wtpg = consistent_state()
        wtpg.ensure_pair(1, 3)  # T1 and T3 share no granule
        problems = find_violations(table, wtpg)
        assert any("without conflicting declarations" in p for p in problems)

    def test_underweight_edge_detected(self):
        table, wtpg = consistent_state()
        wtpg.pair(1, 2).weight_ab = 0.0  # corrupt w(T1->T2)
        assert any("below due" in p for p in find_violations(table, wtpg))

    def test_unresolved_holder_detected(self):
        table, wtpg = consistent_state()
        table.grant(2, 0)  # T2 holds X on P0, pair (1,2) still unresolved
        problems = find_violations(table, wtpg)
        assert any("holder-first" in p for p in problems)

    def test_cycle_detected(self):
        # Three pairwise-conflicting writers resolved cyclically: legal at
        # the WTPG level (pairs are independent) but an unavoidable
        # deadlock — schedulers must never produce it.
        table, wtpg = LockTable(), WTPG()
        for tid in (1, 2, 3):
            spec = TransactionSpec(tid, [Step.write(0, 1)])
            table.register(spec)
            add_transaction(wtpg, table, spec)
        wtpg.resolve(1, 2)
        wtpg.resolve(2, 3)
        wtpg.resolve(3, 1)
        assert any("cycle" in p for p in find_violations(table, wtpg))

    def test_excess_source_weight_detected(self):
        table, wtpg = consistent_state()
        wtpg.set_source_weight(3, 99)
        assert any("exceeds" in p for p in find_violations(table, wtpg))

    def test_check_consistency_raises(self):
        table, wtpg = consistent_state()
        wtpg.set_source_weight(3, 99)
        with pytest.raises(SchedulerError):
            check_consistency(table, wtpg)


@st.composite
def operation_sequences(draw):
    ops = []
    for tid in range(1, draw(st.integers(min_value=2, max_value=6)) + 1):
        steps = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            partition = draw(st.integers(min_value=0, max_value=3))
            write = draw(st.booleans())
            cost = draw(st.integers(min_value=1, max_value=4))
            steps.append(Step.write(partition, cost) if write
                         else Step.read(partition, cost))
        ops.append(TransactionSpec(tid, steps))
    return ops


@pytest.mark.parametrize("name", ["C2PL", "CHAIN", "K2"])
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(specs=operation_sequences())
def test_live_schedulers_stay_consistent_mid_workload(name, specs):
    """Drive a scheduler step by step; check invariants after every op."""
    scheduler = make_scheduler(name)
    assert isinstance(scheduler, WTPGScheduler)
    runtimes = [TransactionRuntime(spec) for spec in specs]
    admitted = set()
    now = 0.0
    for _ in range(60):
        progressed = False
        for txn in runtimes:
            now += 1
            if txn.committed:
                continue
            if txn.tid not in admitted:
                if scheduler.admit(txn, now).admitted:
                    admitted.add(txn.tid)
                    progressed = True
                check_consistency(scheduler.table, scheduler.wtpg)
                continue
            if txn.finished_all_steps:
                scheduler.commit(txn, now)
                txn.commit_time = now
                progressed = True
            elif scheduler.request_lock(txn, now).decision is Decision.GRANT:
                for _ in range(int(txn.step().cost)):
                    scheduler.object_processed(txn)
                txn.advance_step()
                progressed = True
            check_consistency(scheduler.table, scheduler.wtpg)
        if not progressed and all(t.committed for t in runtimes):
            break
