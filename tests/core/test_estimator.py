"""Tests for E(q), anchored on the paper's Figure 4 / Examples 3.4-3.5."""

import pytest

from repro.core import WTPG, estimate_contention
from repro.core.estimator import INFINITE_CONTENTION
from repro.errors import WTPGError


def figure4_wtpg():
    """The WTPG of Figure 4-(a).

    Source weights are all 0 (as the example states).  Structure:
    T4 -> T5 resolved (weight 1); pair (T4, T6) unresolved with
    w(T4->T6) = 10, w(T6->T4) = 2; pair (T5, T6) unresolved with
    w(T5->T6) = 1 and w(T6->T5) = 1 (the request q of T5 conflicts
    with T6; q' of T6 conflicts back).  These weights reproduce the
    example's outcomes: E(q) = 10 via the crossing resolution T4 -> T6,
    E(q') = 1.
    """
    g = WTPG()
    for tid in (4, 5, 6):
        g.add_transaction(tid, 0)
    e45 = g.ensure_pair(4, 5)
    e45.raise_weight_to(5, 1)
    g.resolve(4, 5)
    e46 = g.ensure_pair(4, 6)
    e46.raise_weight_to(6, 10)
    e46.raise_weight_to(4, 2)
    e56 = g.ensure_pair(5, 6)
    e56.raise_weight_to(6, 1)
    e56.raise_weight_to(5, 1)
    return g


class TestFigure4:
    def test_example_3_4_e_of_q_is_10(self):
        """Granting q of T5 (implying T5->T6) gives E(q) = 10.

        before(T5) = {T4}, after(T5) = {T6}; the crossing pair (T4,T6)
        resolves T4->T6; the critical path is T4->T6 of length 10.
        """
        g = figure4_wtpg()
        assert estimate_contention(g, 5, [(5, 6)]) == 10

    def test_example_3_5_e_of_q_prime_is_1(self):
        """Granting q' of T6 (implying T6->T5) gives E(q') = 1.

        before(T6) = {}, after(T6) = {T5}; the pair (T4,T6) is not
        crossing, so it is deleted; remaining paths: T4->T5 (1) and
        T6->T5 (1).
        """
        g = figure4_wtpg()
        assert estimate_contention(g, 6, [(6, 5)]) == 1

    def test_k_wtpg_would_delay_q_and_grant_q_prime(self):
        g = figure4_wtpg()
        e_q = estimate_contention(g, 5, [(5, 6)])
        e_q_prime = estimate_contention(g, 6, [(6, 5)])
        assert e_q > e_q_prime  # CC2 delays q of T5 (Example 3.5)

    def test_input_graph_not_modified(self):
        g = figure4_wtpg()
        estimate_contention(g, 5, [(5, 6)])
        assert g.orientation(5, 6) is None
        assert g.orientation(4, 6) is None


class TestDeadlockDetection:
    def test_flipping_resolved_pair_is_infinite(self):
        g = figure4_wtpg()
        # T4 -> T5 is resolved; implying T5 -> T4 is a deadlock.
        assert estimate_contention(g, 5, [(5, 4)]) == INFINITE_CONTENTION

    def test_cycle_through_implied_edges_is_infinite(self):
        g = WTPG()
        for tid in (1, 2, 3):
            g.add_transaction(tid, 0)
        for a, b in ((1, 2), (2, 3), (1, 3)):
            g.ensure_pair(a, b)
        g.resolve(1, 2)
        g.resolve(2, 3)
        # Granting a lock to T3 that implies T3 -> T1 closes the cycle.
        assert estimate_contention(g, 3, [(3, 1)]) == INFINITE_CONTENTION

    def test_transitively_forced_cycle_detected(self):
        # before/after crossing resolution can itself close a cycle if the
        # graph was already tangled; ensure we return infinity not a crash.
        g = WTPG()
        for tid in (1, 2, 3, 4):
            g.add_transaction(tid, 0)
        g.ensure_pair(1, 2)
        g.resolve(1, 2)
        g.ensure_pair(2, 3)
        g.ensure_pair(3, 4)
        g.resolve(3, 4)
        g.ensure_pair(4, 1)
        g.resolve(4, 1)
        # Implying 2->3 creates 1->2->3->4->1.
        assert estimate_contention(g, 2, [(2, 3)]) == INFINITE_CONTENTION


class TestEstimatorMechanics:
    def test_unknown_transaction_rejected(self):
        g = figure4_wtpg()
        with pytest.raises(WTPGError):
            estimate_contention(g, 99, [])

    def test_missing_pair_for_implication_rejected(self):
        g = WTPG()
        g.add_transaction(1, 0)
        g.add_transaction(2, 0)
        with pytest.raises(WTPGError):
            estimate_contention(g, 1, [(1, 2)])

    def test_no_implications_returns_plain_critical_path(self):
        g = WTPG()
        g.add_transaction(1, 7)
        g.add_transaction(2, 3)
        assert estimate_contention(g, 1, []) == 7

    def test_source_weights_participate(self):
        g = figure4_wtpg()
        g.set_source_weight(4, 50)
        # Critical path now dominated by w(T0->T4) + w(T4->T6) = 60.
        assert estimate_contention(g, 5, [(5, 6)]) == 60

    def test_already_resolved_same_direction_is_fine(self):
        g = figure4_wtpg()
        g.resolve(5, 6)
        assert estimate_contention(g, 5, [(5, 6)]) == 10
