"""Tests for the classic blocking-2PL-with-restarts baseline."""

from repro.core import Step, TransactionRuntime, TransactionSpec
from repro.core.schedulers import (BlockingTwoPhaseLock,
                                   CautiousTwoPhaseLock, Decision,
                                   make_scheduler)


def rt(tid, steps):
    return TransactionRuntime(TransactionSpec(tid, steps))


class TestBasicLocking:
    def test_factory_knows_2pl(self):
        assert isinstance(make_scheduler("2PL"), BlockingTwoPhaseLock)

    def test_admits_everyone(self):
        sched = BlockingTwoPhaseLock()
        for tid in range(1, 6):
            assert sched.admit(rt(tid, [Step.write(0, 1)])).admitted

    def test_grant_and_block(self):
        sched = BlockingTwoPhaseLock()
        t1 = rt(1, [Step.write(0, 1)])
        t2 = rt(2, [Step.write(0, 1)])
        sched.admit(t1)
        sched.admit(t2)
        assert sched.request_lock(t1).granted
        assert sched.request_lock(t2).decision is Decision.BLOCK

    def test_blocked_proceeds_after_commit(self):
        sched = BlockingTwoPhaseLock()
        t1 = rt(1, [Step.write(0, 1)])
        t2 = rt(2, [Step.write(0, 1)])
        sched.admit(t1)
        sched.admit(t2)
        sched.request_lock(t1)
        sched.request_lock(t2)
        t1.advance_step()
        sched.commit(t1)
        assert sched.request_lock(t2).granted

    def test_upgrade_allowed_without_rivals(self):
        sched = BlockingTwoPhaseLock()
        t1 = rt(1, [Step.read(0, 1), Step.write(0, 1)])
        sched.admit(t1)
        assert sched.request_lock(t1).granted
        t1.advance_step()
        assert sched.request_lock(t1).granted


class TestDeadlockHandling:
    def make_cross(self):
        sched = BlockingTwoPhaseLock()
        t1 = rt(1, [Step.write(0, 1), Step.write(1, 1)])
        t2 = rt(2, [Step.write(1, 1), Step.write(0, 1)])
        sched.admit(t1)
        sched.admit(t2)
        assert sched.request_lock(t1).granted      # T1 holds P0
        assert sched.request_lock(t2).granted      # T2 holds P1
        t1.advance_step()
        t2.advance_step()
        return sched, t1, t2

    def test_cross_deadlock_aborts_second_waiter(self):
        sched, t1, t2 = self.make_cross()
        # T1 requests P1: blocked by T2 (no cycle yet).
        assert sched.request_lock(t1).decision is Decision.BLOCK
        # T2 requests P0: closes the cycle -> T2 is the victim.
        response = sched.request_lock(t2)
        assert response.decision is Decision.ABORT
        assert "deadlock victim" in response.reason
        assert sched.stats.aborts == 1

    def test_victim_abort_releases_locks(self):
        sched, t1, t2 = self.make_cross()
        sched.request_lock(t1)
        sched.request_lock(t2)
        sched.abort_transaction(t2)
        t2.reset_for_retry()
        # T1's blocked request can now go through.
        assert sched.request_lock(t1).granted

    def test_victim_can_restart_and_finish(self):
        sched, t1, t2 = self.make_cross()
        sched.request_lock(t1)
        sched.request_lock(t2)
        sched.abort_transaction(t2)
        t2.reset_for_retry()
        assert sched.request_lock(t1).granted
        t1.advance_step()
        sched.commit(t1)
        assert sched.admit(t2).admitted
        assert sched.request_lock(t2).granted
        t2.advance_step()
        assert sched.request_lock(t2).granted

    def test_upgrade_deadlock_detected(self):
        """The classic S/S upgrade deadlock 2PL walks straight into."""
        sched = BlockingTwoPhaseLock()
        t1 = rt(1, [Step.read(0, 1), Step.write(0, 1)])
        t2 = rt(2, [Step.read(0, 1), Step.write(0, 1)])
        sched.admit(t1)
        sched.admit(t2)
        assert sched.request_lock(t1).granted
        assert sched.request_lock(t2).granted
        t1.advance_step()
        t2.advance_step()
        assert sched.request_lock(t1).decision is Decision.BLOCK
        assert sched.request_lock(t2).decision is Decision.ABORT


class TestWtpgSchedulerAbort:
    def test_abort_releases_declarations_and_excises_wtpg_node(self):
        sched = CautiousTwoPhaseLock()
        t1 = rt(1, [Step.write(0, 1)])
        sched.admit(t1)
        assert 1 in sched.wtpg
        assert sched.abort_transaction(t1) == ()
        assert 1 not in sched.wtpg
        assert not sched.table.is_registered(1)
        assert sched.wtpg.cache_violations() == []

    def test_abort_returns_precedence_successors(self):
        sched = CautiousTwoPhaseLock()
        t1 = rt(1, [Step.write(0, 2)])
        t2 = rt(2, [Step.write(0, 1)])
        sched.admit(t1)
        sched.admit(t2)
        assert sched.request_lock(t1).granted
        # t2's declaration on partition 0 resolves the pair edge t1 -> t2.
        assert sched.abort_transaction(t1) == (2,)
        assert 1 not in sched.wtpg
        # The survivor can now run and commit on its own.
        assert sched.request_lock(t2).granted
        t2.advance_step()
        sched.commit(t2)

    def test_abort_of_unknown_transaction_is_a_no_op(self):
        sched = CautiousTwoPhaseLock()
        t1 = rt(1, [Step.write(0, 1)])
        assert sched.abort_transaction(t1) == ()


class TestFullSimulation:
    def test_2pl_runs_and_commits_with_serializable_history(self):
        from repro import SimulationParameters, run_simulation
        from repro.workloads import pattern1, pattern1_catalog

        params = SimulationParameters(scheduler="2PL", arrival_rate_tps=0.5,
                                      sim_clocks=200_000, seed=3,
                                      num_partitions=16)
        result = run_simulation(params, pattern1(),
                                catalog=pattern1_catalog(),
                                record_history=True)
        assert result.metrics.commits > 0
        result.history.check_lock_exclusion()
        result.history.check_serializable()

    def test_2pl_wastes_work_on_pattern1(self):
        """Pattern1's upgrade pattern forces restarts: wasted objects."""
        from repro import SimulationParameters, run_simulation
        from repro.workloads import pattern1, pattern1_catalog

        params = SimulationParameters(scheduler="2PL", arrival_rate_tps=0.6,
                                      sim_clocks=300_000, seed=3,
                                      num_partitions=16)
        result = run_simulation(params, pattern1(),
                                catalog=pattern1_catalog())
        assert result.metrics.aborts > 0
        assert result.metrics.wasted_objects > 0

    def test_trace_validates_with_restarts(self):
        from repro import SimulationParameters
        from repro.machine import Cluster
        from repro.machine.trace import EventType, Tracer, validate_trace
        from repro.workloads import pattern1, pattern1_catalog

        tracer = Tracer()
        params = SimulationParameters(scheduler="2PL", arrival_rate_tps=0.6,
                                      sim_clocks=200_000, seed=3,
                                      num_partitions=16)
        Cluster(params, pattern1(), catalog=pattern1_catalog(),
                tracer=tracer).run()
        validate_trace(tracer)
        assert tracer.count(EventType.ABORTED) > 0
