"""Property tests for chain-form detection, with networkx as referee."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import WTPG, chain_components, is_chain_form
from repro.core.chain import would_remain_chain_form
from repro.errors import NotChainFormError


@st.composite
def conflict_graphs(draw, max_nodes=8):
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    edges = []
    for a in range(1, n + 1):
        for b in range(a + 1, n + 1):
            if draw(st.booleans()):
                edges.append((a, b))
    return n, edges


def build_wtpg(n, edges):
    g = WTPG()
    for tid in range(1, n + 1):
        g.add_transaction(tid, 1.0)
    for a, b in edges:
        g.ensure_pair(a, b)
    return g


def reference_is_chain_form(n, edges):
    """networkx referee: disjoint union of simple paths."""
    if n == 0:
        return True  # the empty WTPG is trivially chain-form
    graph = nx.Graph()
    graph.add_nodes_from(range(1, n + 1))
    graph.add_edges_from(edges)
    if any(degree > 2 for _, degree in graph.degree):
        return False
    return nx.is_forest(graph)


@settings(max_examples=300, deadline=None)
@given(conflict_graphs())
def test_chain_form_matches_networkx_reference(case):
    n, edges = case
    assert is_chain_form(build_wtpg(n, edges)) == \
        reference_is_chain_form(n, edges)


@settings(max_examples=200, deadline=None)
@given(conflict_graphs())
def test_components_partition_the_nodes_along_edges(case):
    n, edges = case
    g = build_wtpg(n, edges)
    try:
        components = chain_components(g)
    except NotChainFormError:
        return
    # Every node exactly once.
    flat = [tid for component in components for tid in component]
    assert sorted(flat) == list(range(1, n + 1))
    # Consecutive nodes in a component are conflict neighbours; the
    # component is a maximal path.
    edge_set = {frozenset(e) for e in edges}
    for component in components:
        for left, right in zip(component, component[1:]):
            assert frozenset((left, right)) in edge_set
    # Every edge appears inside exactly one component.
    component_edges = {frozenset((l, r))
                       for component in components
                       for l, r in zip(component, component[1:])}
    assert component_edges == edge_set


@settings(max_examples=200, deadline=None)
@given(conflict_graphs(max_nodes=6),
       st.sets(st.integers(min_value=1, max_value=6)))
def test_admission_prediction_equals_actual_insertion(case, conflicts):
    n, edges = case
    conflicts = {c for c in conflicts if c <= n}
    g = build_wtpg(n, edges)
    if not is_chain_form(g):
        return
    predicted = would_remain_chain_form(g, 99, conflicts)
    g.add_transaction(99, 1.0)
    for other in conflicts:
        g.ensure_pair(99, other)
    assert predicted == is_chain_form(g)
