"""Scenario tests for K-WTPG (CC2): E-minimality granting, K-conflict."""

import pytest

from repro.core import Step, TransactionRuntime, TransactionSpec
from repro.core.schedulers import Decision, KWTPGScheduler


def rt(tid, steps):
    return TransactionRuntime(TransactionSpec(tid, steps))


class TestKConflictAdmission:
    def test_within_k_admitted(self):
        sched = KWTPGScheduler(k=2)
        for tid in (1, 2, 3):
            assert sched.admit(rt(tid, [Step.write(0, 1)])).admitted

    def test_exceeding_k_rejected(self):
        sched = KWTPGScheduler(k=2)
        for tid in (1, 2, 3):
            sched.admit(rt(tid, [Step.write(0, 1)]))
        response = sched.admit(rt(4, [Step.write(0, 1)]))
        assert not response.admitted
        assert "K-conflict" in response.reason
        assert 4 not in sched.wtpg
        assert not sched.table.is_registered(4)

    def test_k_zero_serializes_conflicts_entirely(self):
        sched = KWTPGScheduler(k=0)
        assert sched.admit(rt(1, [Step.write(0, 1)])).admitted
        assert not sched.admit(rt(2, [Step.write(0, 1)])).admitted
        assert sched.admit(rt(3, [Step.read(5, 1)])).admitted

    def test_reads_do_not_conflict_for_k(self):
        sched = KWTPGScheduler(k=0)
        for tid in (1, 2, 3, 4):
            assert sched.admit(rt(tid, [Step.read(0, 1)])).admitted

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            KWTPGScheduler(k=-1)

    def test_k1_accepts_non_chain_form_wtpg(self):
        """Section 3.3: "Even K-WTPG of K=1 accepts a WTPG which is not
        a chain-form."  A conflict triangle (each declaration conflicting
        with exactly one other) passes K=1 but fails chain-form."""
        from repro.core.chain import is_chain_form
        from repro.core.schedulers import ChainScheduler

        def triangle_runtimes():
            return [rt(1, [Step.write(0, 1), Step.write(2, 1)]),
                    rt(2, [Step.write(0, 1), Step.write(1, 1)]),
                    rt(3, [Step.write(1, 1), Step.write(2, 1)])]

        k1 = KWTPGScheduler(k=1)
        for txn in triangle_runtimes():
            assert k1.admit(txn).admitted
        assert not is_chain_form(k1.wtpg)

        chain = ChainScheduler()
        admitted = [chain.admit(txn).admitted
                    for txn in triangle_runtimes()]
        assert admitted == [True, True, False]  # CHAIN must reject one


class TestEMinimalityGrant:
    def make_asymmetric_trio(self):
        """T9 holds X on P9; T2 declares P0 then P9, so T2 is already
        fixed behind T9 (pair pre-resolved T9 -> T2 at admission).  T1
        only wants P0.  Granting T2's P0 request chains T1 behind the
        T9 -> T2 tail (E = 7); granting T1 first costs only E = 6, so
        K-WTPG grants T1 and delays T2.

        Two plain transactions racing for one partition produce an E-tie
        (the critical path is a *makespan*: either order finishes the
        batch at the same time) — the discriminating signal only appears
        when one competitor drags an existing precedence tail.
        """
        sched = KWTPGScheduler(k=2)
        t9 = rt(9, [Step.write(9, 5)])
        assert sched.admit(t9).admitted
        assert sched.request_lock(t9).granted      # T9 holds P9
        t2 = rt(2, [Step.write(0, 2), Step.write(9, 1)])
        t1 = rt(1, [Step.write(0, 1)])
        assert sched.admit(t2).admitted            # pre-resolves T9 -> T2
        assert sched.admit(t1).admitted
        return sched, t1, t2, t9

    def test_pair_preresolved_behind_holder(self):
        sched, t1, t2, t9 = self.make_asymmetric_trio()
        assert sched.wtpg.orientation(9, 2) == (9, 2)

    def test_free_transaction_granted(self):
        sched, t1, t2, t9 = self.make_asymmetric_trio()
        assert sched.request_lock(t1).granted

    def test_encumbered_transaction_delayed(self):
        sched, t1, t2, t9 = self.make_asymmetric_trio()
        response = sched.request_lock(t2)
        assert response.decision is Decision.DELAY
        assert "not minimal" in response.reason

    def test_encumbered_granted_after_rival_commits(self):
        sched, t1, t2, t9 = self.make_asymmetric_trio()
        assert sched.request_lock(t1).granted
        sched.object_processed(t1)
        t1.advance_step()
        sched.commit(t1)
        assert sched.request_lock(t2).granted

    def test_symmetric_race_is_a_tie_and_grants(self):
        """Documented tie behaviour: with no precedence tails, either
        order yields the same makespan, so E(q) == E(q') and the request
        at hand is granted."""
        sched = KWTPGScheduler(k=2)
        t1 = rt(1, [Step.write(0, 1)])
        t2 = rt(2, [Step.write(0, 4), Step.write(1, 6)])
        sched.admit(t1)
        sched.admit(t2)
        assert sched.request_lock(t1).granted

    def test_no_conflicts_grants_immediately(self):
        sched = KWTPGScheduler(k=2)
        t1 = rt(1, [Step.read(3, 2)])
        sched.admit(t1)
        assert sched.request_lock(t1).granted

    def test_block_takes_priority_over_estimation(self):
        sched = KWTPGScheduler(k=2)
        t1 = rt(1, [Step.write(0, 1)])
        t2 = rt(2, [Step.write(0, 1)])
        sched.admit(t1)
        sched.admit(t2)
        sched.request_lock(t1)
        response = sched.request_lock(t2)
        assert response.decision is Decision.BLOCK


class TestLivelockAvoidance:
    def test_unreachable_rival_declarations_cannot_stall_everyone(self):
        """Regression (found by hypothesis): T1 w(P0)->r(P0), T2 w(P0),
        T3 r(P0:3).  T1's *second-step* r has the lowest E, but T1 cannot
        issue it before its w — comparing against it livelocked all
        three.  E-minimality must only consider each rival's earliest
        pending conflicting declaration."""
        sched = KWTPGScheduler(k=2)
        t1 = rt(1, [Step.write(0, 1), Step.read(0, 1)])
        t2 = rt(2, [Step.write(0, 1)])
        t3 = rt(3, [Step.read(0, 3)])
        for t in (t1, t2, t3):
            assert sched.admit(t).admitted
        decisions = [sched.request_lock(t).decision for t in (t1, t2, t3)]
        assert Decision.GRANT in decisions

    def test_property_driver_runs_the_trio_to_completion(self):
        from tests.core.driver import run_logical
        from repro.core import TransactionSpec

        specs = [TransactionSpec(1, [Step.write(0, 1), Step.read(0, 1)]),
                 TransactionSpec(2, [Step.write(0, 1)]),
                 TransactionSpec(3, [Step.read(0, 3)])]
        result = run_logical(KWTPGScheduler(k=2), specs)
        assert sorted(result.commit_order) == [1, 2, 3]

    def test_cross_partition_deferral_cycle_is_broken(self):
        """Regression (found by hypothesis): T3 defers to T8's P0
        declaration while T8 (and T7) defer to T3's P1 declaration —
        a standoff across two granules that no weight adjustment can
        break.  The deferral-cycle breaker must grant one of them."""
        from tests.core.driver import run_logical
        from repro.core import TransactionSpec

        specs = [
            TransactionSpec(1, [Step.read(0, 1)]),
            TransactionSpec(2, [Step.read(0, 1)] * 4),
            TransactionSpec(3, [Step.read(0, 1), Step.write(0, 1),
                                Step.read(1, 1)]),
            TransactionSpec(4, [Step.read(0, 1)]),
            TransactionSpec(5, [Step.read(0, 1)]),
            TransactionSpec(6, [Step.read(0, 1)]),
            TransactionSpec(7, [Step.write(1, 1), Step.read(0, 1),
                                Step.read(0, 1), Step.read(0, 1)]),
            TransactionSpec(8, [Step.write(1, 1), Step.read(0, 2)]),
        ]
        result = run_logical(KWTPGScheduler(k=2), specs, max_passes=3000)
        assert sorted(result.commit_order) == list(range(1, 9))


class TestKCountModes:
    def test_transaction_counting_is_looser_on_upgrades(self):
        """Pattern1-style rivals (r then w on one partition) contribute
        two conflicting declarations but one transaction."""

        def admit_three(mode):
            sched = KWTPGScheduler(k=2, k_count_mode=mode)
            outcomes = []
            for tid in (1, 2, 3):
                outcomes.append(sched.admit(rt(
                    tid, [Step.read(0, 1), Step.write(0, 1)])).admitted)
            return outcomes

        assert admit_three("transactions") == [True, True, True]
        assert admit_three("declarations") == [True, True, False]

    def test_unknown_mode_rejected(self):
        from repro.core import LockTable, TransactionSpec
        from repro.errors import LockTableError

        table = LockTable()
        table.register(TransactionSpec(1, [Step.write(0, 1)]))
        decl = table.declarations_of(1)[0]
        with pytest.raises(LockTableError):
            table.conflict_count(decl, count="granules")


class TestDeadlockPrediction:
    def test_contradicting_grant_is_delayed(self):
        A, B = 0, 1
        sched = KWTPGScheduler(k=2)
        t1 = rt(1, [Step.write(A, 1), Step.write(B, 1)])
        t2 = rt(2, [Step.write(B, 1), Step.write(A, 1)])
        sched.admit(t1)
        sched.admit(t2)
        assert sched.request_lock(t1).granted      # fixes T1 -> T2
        response = sched.request_lock(t2)          # B grant implies T2 -> T1
        assert response.decision is Decision.DELAY
        assert sched.stats.deadlock_predictions >= 1


class TestControlSaving:
    def delayed_scenario(self, keeptime):
        """The asymmetric trio: T2's P0 request is delayed (see above),
        so re-issuing it exercises the E-cache."""
        sched = KWTPGScheduler(k=2, keeptime=keeptime)
        t9 = rt(9, [Step.write(9, 5)])
        sched.admit(t9, now=0)
        sched.request_lock(t9, now=0)
        t2 = rt(2, [Step.write(0, 2), Step.write(9, 1)])
        t1 = rt(1, [Step.write(0, 1)])
        sched.admit(t2, now=0)
        sched.admit(t1, now=0)
        return sched, t1, t2

    def test_e_values_cached_within_keeptime(self):
        sched, t1, t2 = self.delayed_scenario(keeptime=5000)
        first = sched.request_lock(t2, now=1)
        assert first.decision is Decision.DELAY
        calls_after_first = sched.stats.estimator_calls
        assert first.cpu_cost > 0
        # Same request again, nothing changed: cached, zero cost.
        second = sched.request_lock(t2, now=2)
        assert second.decision is Decision.DELAY
        assert second.cpu_cost == 0.0
        assert sched.stats.estimator_calls == calls_after_first

    def test_new_precedence_edge_invalidates_cache(self):
        sched = KWTPGScheduler(k=2, keeptime=50_000)
        t1 = rt(1, [Step.write(0, 5), Step.write(1, 5)])
        t2 = rt(2, [Step.write(0, 5)])
        t3 = rt(3, [Step.write(1, 2)])
        for t in (t1, t2, t3):
            sched.admit(t, now=0)
        sched.request_lock(t2, now=1)
        calls = sched.stats.estimator_calls
        # A grant elsewhere creates a precedence edge (T3 -> T1 on P1).
        assert sched.request_lock(t3, now=2).granted
        sched.request_lock(t2, now=3)
        assert sched.stats.estimator_calls > calls

    def test_keeptime_expiry_recomputes(self):
        sched, t1, t2 = self.delayed_scenario(keeptime=100)
        assert sched.request_lock(t2, now=1).decision is Decision.DELAY
        calls = sched.stats.estimator_calls
        response = sched.request_lock(t2, now=500)
        assert response.decision is Decision.DELAY
        assert sched.stats.estimator_calls > calls
        assert response.cpu_cost > 0


class TestWeightsDriveDecisions:
    def test_progress_flips_the_preference(self):
        """As the heavy transaction nears completion its dues shrink;
        eventually it becomes the minimal-E competitor."""
        sched = KWTPGScheduler(k=2, keeptime=0)  # always recompute
        t1 = rt(1, [Step.write(1, 8), Step.write(0, 1)])
        t2 = rt(2, [Step.write(0, 2), Step.write(2, 2)])
        sched.admit(t1)
        sched.admit(t2)
        assert sched.request_lock(t1).granted  # P1: no conflict
        # T1 processes its 8 objects on P1: its remaining work drops to 2.
        for _ in range(8):
            sched.object_processed(t1)
        t1.advance_step()
        # Now both compete for P0: T1's due there is 1, T2's is 4.
        r1 = sched.request_lock(t1)
        r2 = sched.request_lock(t2)
        assert r1.granted
        assert r2.decision in (Decision.DELAY, Decision.BLOCK)


class TestECacheKeyedByImpliedSet:
    """Regression: the E-cache used to be keyed by (tid, step_index) only.

    Within one keeptime window the implied-resolution set of the *same*
    request can shrink without any cache invalidation firing: a rival's
    pending declaration is consumed by a re-access of an already-held lock
    (``_consume_if_pending``), which creates no precedence edge and no
    commit/admit event.  The old key then returned the E value of the old,
    larger implied set — a stale estimate that can mis-rank candidates.
    The key now includes the implied tuple itself.
    """

    def test_same_request_different_implied_sets_not_conflated(self):
        from repro.core import builder
        from repro.core.estimator import estimate_contention
        from repro.core.transaction import LockMode

        sched = KWTPGScheduler(k=3, keeptime=50_000)
        t1 = rt(1, [Step.read(0, 4), Step.read(0, 1)])
        t2 = rt(2, [Step.write(0, 2)])
        t4 = rt(4, [Step.read(0, 1)])
        for t in (t1, t2, t4):
            assert sched.admit(t, now=0).admitted

        full = builder.implied_resolutions(
            sched.table, sched.wtpg, 2, 0, LockMode.EXCLUSIVE)
        assert full == ((2, 1), (2, 4))
        e_full, cost_full = sched._estimate(2, 0, full, now=1)
        assert cost_full > 0
        assert e_full == estimate_contention(
            sched.wtpg, 2, full, reference=True)

        # T1's second r-P0 declaration is consumed by its re-access while
        # its first grant still holds the lock: no new precedence edge, no
        # commit, no admission — the ControlSaver stays warm.  In that
        # state the same (tid=2, step=0) request implies only (2, 4).
        reduced = ((2, 4),)
        truth = estimate_contention(sched.wtpg, 2, reduced, reference=True)
        e_reduced, _ = sched._estimate(2, 0, reduced, now=2)
        assert e_reduced == truth
        assert e_full != truth  # the stale value the old key would return

    def test_consume_if_pending_shrinks_implied_within_warm_window(self):
        """End-to-end: the consumption path changes the implied set while
        the ControlSaver cache stays warm — the exact state in which the
        old (tid, step_index) key served a stale E value."""
        from repro.core import builder
        from repro.core.estimator import estimate_contention
        from repro.core.transaction import LockMode

        sched = KWTPGScheduler(k=3, keeptime=50_000)
        t1 = rt(1, [Step.read(0, 4), Step.read(0, 1)])
        t2 = rt(2, [Step.write(0, 2)])
        t4 = rt(4, [Step.read(0, 1)])
        for t in (t1, t2, t4):
            assert sched.admit(t, now=0).admitted
        # T1 acquires P0 shared (this grant invalidates — fine, the window
        # of interest starts after it)...
        assert sched.request_lock(t1, now=1).granted
        mid = builder.implied_resolutions(
            sched.table, sched.wtpg, 2, 0, LockMode.EXCLUSIVE)
        assert mid == ((2, 1), (2, 4))  # T1's step-1 decl is still pending
        # ...and T2's request is estimated, warming the cache.
        e_mid, _ = sched._estimate(2, 0, mid, now=2)
        assert not sched._saver.stale(3)
        # T1 finishes step 0 and re-accesses P0 at step 1: the re-access
        # consumes its second declaration with NO invalidation event.
        for _ in range(4):
            sched.object_processed(t1)
        t1.advance_step()
        assert sched.request_lock(t1, now=3).granted
        assert not sched._saver.stale(4)  # cache still warm
        after = builder.implied_resolutions(
            sched.table, sched.wtpg, 2, 0, LockMode.EXCLUSIVE)
        assert after == ((2, 4),)  # the implied set shrank silently
        truth = estimate_contention(sched.wtpg, 2, after, reference=True)
        e_after, _ = sched._estimate(2, 0, after, now=4)
        assert e_after == truth
        assert e_mid != e_after  # the old key would have served e_mid
