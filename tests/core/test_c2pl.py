"""Scenario tests for Cautious 2PL: blocking, deadlock prediction, upgrades."""

import pytest

from repro.core import LockMode, Step, TransactionRuntime, TransactionSpec
from repro.core.schedulers import CautiousTwoPhaseLock, Decision


def rt(tid, steps):
    return TransactionRuntime(TransactionSpec(tid, steps))


def test_grant_when_no_conflict():
    sched = CautiousTwoPhaseLock()
    t1 = rt(1, [Step.read(0, 1)])
    sched.admit(t1)
    assert sched.request_lock(t1).granted


def test_block_on_conflicting_holder():
    sched = CautiousTwoPhaseLock()
    t1 = rt(1, [Step.write(0, 1)])
    t2 = rt(2, [Step.read(0, 1)])
    sched.admit(t1)
    sched.admit(t2)
    sched.request_lock(t1)
    response = sched.request_lock(t2)
    assert response.decision is Decision.BLOCK


def test_shared_locks_grant_concurrently():
    sched = CautiousTwoPhaseLock()
    t1 = rt(1, [Step.read(0, 1)])
    t2 = rt(2, [Step.read(0, 1)])
    sched.admit(t1)
    sched.admit(t2)
    assert sched.request_lock(t1).granted
    assert sched.request_lock(t2).granted


def test_cross_partition_deadlock_predicted_and_avoided():
    """T1: w(A) then w(B); T2: w(B) then w(A) — plain 2PL deadlocks here.

    C2PL grants T1's A (fixing T1 before T2), then must *delay* T2's B
    request, because granting it would fix T2 before T1: a cycle.
    """
    A, B = 0, 1
    sched = CautiousTwoPhaseLock()
    t1 = rt(1, [Step.write(A, 1), Step.write(B, 1)])
    t2 = rt(2, [Step.write(B, 1), Step.write(A, 1)])
    sched.admit(t1)
    sched.admit(t2)
    assert sched.request_lock(t1).granted          # T1 takes A: T1 -> T2
    delayed = sched.request_lock(t2)
    assert delayed.decision is Decision.DELAY      # T2 on B would cycle
    assert sched.stats.deadlock_predictions == 1

    # T1 can finish: grant B, commit; then T2 proceeds freely.
    t1.advance_step()
    assert sched.request_lock(t1).granted
    t1.advance_step()
    sched.commit(t1)
    assert sched.request_lock(t2).granted
    t2.advance_step()
    assert sched.request_lock(t2).granted


def test_upgrade_race_is_serialized():
    """Both T1 and T2 do r(A) then w(A).

    Granting T1's S on A fixes T1 -> T2 (T2's X must wait for T1's
    commit).  T2's S request then implies T2 -> T1 (via T1's pending X):
    contradiction, so C2PL delays it — avoiding the classic S/S upgrade
    deadlock of plain 2PL.
    """
    sched = CautiousTwoPhaseLock()
    t1 = rt(1, [Step.read(0, 1), Step.write(0, 1)])
    t2 = rt(2, [Step.read(0, 1), Step.write(0, 1)])
    sched.admit(t1)
    sched.admit(t2)
    assert sched.request_lock(t1).granted
    response = sched.request_lock(t2)
    assert response.decision is Decision.DELAY

    # T1 upgrades (self-conflict ignored), finishes, commits.
    t1.advance_step()
    assert sched.request_lock(t1).granted
    t1.advance_step()
    sched.commit(t1)
    assert sched.request_lock(t2).granted


def test_holder_forces_order_for_late_arrival():
    sched = CautiousTwoPhaseLock()
    t1 = rt(1, [Step.write(0, 2), Step.write(1, 1)])
    sched.admit(t1)
    sched.request_lock(t1)  # T1 holds X on P0
    t2 = rt(2, [Step.write(1, 1), Step.write(0, 1)])
    sched.admit(t2)
    # Pair is pre-resolved T1 -> T2; T2's request on P1 would imply
    # T2 -> T1: delay.
    response = sched.request_lock(t2)
    assert response.decision is Decision.DELAY


def test_chain_of_blocking_is_permitted():
    """C2PL happily builds T1 -> T2 -> T3 chains (its weakness)."""
    sched = CautiousTwoPhaseLock()
    t1 = rt(1, [Step.write(0, 1)])
    t2 = rt(2, [Step.write(0, 1), Step.write(1, 1)])
    t3 = rt(3, [Step.write(1, 1)])
    for t in (t1, t2, t3):
        sched.admit(t)
    assert sched.request_lock(t1).granted       # T1 -> T2 on P0
    assert sched.request_lock(t3).granted       # T3 -> T2 on P1
    assert sched.request_lock(t2).decision is Decision.BLOCK


def test_already_held_lock_is_regranted_silently():
    sched = CautiousTwoPhaseLock()
    t1 = rt(1, [Step.write(0, 1), Step.read(0, 1)])
    sched.admit(t1)
    assert sched.request_lock(t1).granted
    t1.advance_step()
    response = sched.request_lock(t1)
    assert response.granted
    assert response.reason == "already held"


def test_commit_removes_from_graph_and_table():
    sched = CautiousTwoPhaseLock()
    t1 = rt(1, [Step.write(0, 1)])
    sched.admit(t1)
    sched.request_lock(t1)
    t1.advance_step()
    sched.commit(t1)
    assert 1 not in sched.wtpg
    assert not sched.table.is_registered(1)


def test_object_processing_decrements_wtpg_weight():
    sched = CautiousTwoPhaseLock()
    t1 = rt(1, [Step.write(0, 3)])
    sched.admit(t1)
    assert sched.wtpg.source_weight(1) == 3
    sched.object_processed(t1)
    assert sched.wtpg.source_weight(1) == 2
    assert t1.remaining_declared == 2
