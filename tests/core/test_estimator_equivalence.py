"""Differential test: overlay E(q) == legacy copy-based E(q).

The overlay estimator (copy-free delta view, reachability probes, DFS
longest path) must be *value-identical* — the same floats, the same
``INFINITE_CONTENTION`` verdicts — to the reference implementation that
deep-copies the graph and runs full topological sorts, on randomized
WTPGs and implied-resolution sets.

Deliberately uses a plain seeded ``random.Random`` (not hypothesis) so
the case count is explicit and the corpus is fixed: 600 generated
scenarios, every one asserted equal.
"""

import random

import pytest

from repro.core import WTPG
from repro.core.estimator import (INFINITE_CONTENTION, ContentionBatch,
                                  estimate_contention)

SEED = 20260806
NUM_CASES = 600


def random_scenario(rng):
    """A random WTPG plus a (requester, implied resolutions) candidate.

    Covers: unresolved / forward-resolved / backward-resolved pairs (the
    backward ones can create base-graph cycles), zero and non-zero source
    weights, implied resolutions in both directions (including ones that
    contradict an existing resolution — the deadlock / INF path) and
    occasional duplicate implications.
    """
    n = rng.randint(2, 12)
    g = WTPG()
    for tid in range(1, n + 1):
        weight = round(rng.uniform(0, 15), 3) if rng.random() < 0.8 else 0.0
        g.add_transaction(tid, weight)
    pairs = []
    for a in range(1, n + 1):
        for b in range(a + 1, n + 1):
            if rng.random() >= 0.4:
                continue
            edge = g.ensure_pair(a, b)
            edge.raise_weight_to(b, round(rng.uniform(0, 8), 3))
            edge.raise_weight_to(a, round(rng.uniform(0, 8), 3))
            pairs.append((a, b))
            roll = rng.random()
            if roll < 0.30:
                g.resolve(a, b)      # forward: keeps low -> high acyclic
            elif roll < 0.40:
                g.resolve(b, a)      # backward: may create base cycles
    requester = rng.randint(1, n)
    implied = []
    for a, b in pairs:
        if rng.random() < 0.3:
            resolution = (a, b) if rng.random() < 0.5 else (b, a)
            implied.append(resolution)
            if rng.random() < 0.1:
                # Duplicate (sometimes contradictory) implication.
                implied.append(resolution if rng.random() < 0.7
                               else (resolution[1], resolution[0]))
    return g, requester, implied


def test_overlay_equals_reference_on_random_graphs():
    rng = random.Random(SEED)
    finite = infinite = 0
    for case in range(NUM_CASES):
        g, tid, implied = random_scenario(rng)
        snapshot = repr(g)
        overlay = estimate_contention(g, tid, implied)
        reference = estimate_contention(g, tid, implied, reference=True)
        assert overlay == reference, (
            f"case {case}: overlay={overlay} reference={reference} "
            f"tid={tid} implied={implied} graph={snapshot}")
        assert repr(g) == snapshot, f"case {case}: overlay mutated the graph"
        if overlay == INFINITE_CONTENTION:
            infinite += 1
        else:
            finite += 1
    # The corpus must actually exercise both outcome classes.
    assert finite > 50
    assert infinite > 50


def test_batch_equals_reference_across_shared_base():
    """One ContentionBatch evaluating many candidates over one live graph
    (the scheduler's usage pattern) matches per-candidate reference runs."""
    rng = random.Random(SEED + 1)
    for case in range(60):
        g, _, _ = random_scenario(rng)
        batch = ContentionBatch(g)
        candidates = []
        tids = sorted(g.transactions)
        for tid in tids[: min(4, len(tids))]:
            _, _, implied = random_scenario(rng)
            implied = [(p, s) for p, s in implied
                       if g.pair(p, s) is not None]
            candidates.append((tid, implied))
        for tid, implied in candidates:
            assert batch.estimate(tid, implied) == estimate_contention(
                g, tid, implied, reference=True), f"case {case}"


def test_overlay_equals_reference_after_live_mutations():
    """Interleave live-graph mutations (the incremental-maintenance paths:
    resolve, weight decrement, node churn) with estimates in both modes."""
    rng = random.Random(SEED + 2)
    for case in range(80):
        g, tid, implied = random_scenario(rng)
        # Touch the incremental caches first, as a live scheduler would.
        g.has_precedence_cycle()
        if not g.has_precedence_cycle():
            g.critical_path_length()
        for victim in sorted(g.transactions)[:2]:
            if victim != tid and rng.random() < 0.5:
                g.remove_transaction(victim)
        for node in sorted(g.transactions):
            if rng.random() < 0.4:
                g.decrement_source(node, rng.uniform(0, 3))
        implied = [(p, s) for p, s in implied
                   if p in g and s in g and g.pair(p, s) is not None]
        overlay = estimate_contention(g, tid, implied)
        reference = estimate_contention(g, tid, implied, reference=True)
        assert overlay == reference, f"case {case}"
        assert not g.cache_violations(), f"case {case}"


@pytest.mark.parametrize("mode_kwargs", [{}, {"reference": True}])
def test_modes_agree_on_the_paper_example(mode_kwargs):
    """Figure 4: E(q) = 10, E(q') = 1 in both modes."""
    g = WTPG()
    for tid in (4, 5, 6):
        g.add_transaction(tid, 0)
    e45 = g.ensure_pair(4, 5)
    e45.raise_weight_to(5, 1)
    g.resolve(4, 5)
    e46 = g.ensure_pair(4, 6)
    e46.raise_weight_to(6, 10)
    e46.raise_weight_to(4, 2)
    e56 = g.ensure_pair(5, 6)
    e56.raise_weight_to(6, 1)
    e56.raise_weight_to(5, 1)
    assert estimate_contention(g, 5, [(5, 6)], **mode_kwargs) == 10
    assert estimate_contention(g, 6, [(6, 5)], **mode_kwargs) == 1
