"""Unit tests for chain-form detection and decomposition (Definition 2)."""

import pytest

from repro.core import WTPG, chain_components, is_chain_form
from repro.core.chain import would_remain_chain_form
from repro.errors import NotChainFormError


def graph_with_pairs(n_nodes, pairs):
    g = WTPG()
    for tid in range(1, n_nodes + 1):
        g.add_transaction(tid, 1)
    for a, b in pairs:
        g.ensure_pair(a, b)
    return g


class TestChainComponents:
    def test_empty_graph_is_chain_form(self):
        assert chain_components(WTPG()) == []
        assert is_chain_form(WTPG())

    def test_isolated_nodes(self):
        g = graph_with_pairs(3, [])
        comps = chain_components(g)
        assert sorted(map(tuple, comps)) == [(1,), (2,), (3,)]

    def test_single_chain(self):
        g = graph_with_pairs(4, [(1, 2), (2, 3), (3, 4)])
        assert chain_components(g) == [[1, 2, 3, 4]]

    def test_chain_found_regardless_of_tid_order(self):
        g = graph_with_pairs(4, [(3, 1), (1, 4), (4, 2)])
        comps = chain_components(g)
        assert comps == [[2, 4, 1, 3]]  # starts at smallest-tid endpoint

    def test_two_components(self):
        g = graph_with_pairs(5, [(1, 2), (4, 5)])
        comps = chain_components(g)
        assert [1, 2] in comps
        assert [4, 5] in comps
        assert [3] in comps

    def test_star_rejected(self):
        g = graph_with_pairs(4, [(1, 2), (1, 3), (1, 4)])
        with pytest.raises(NotChainFormError):
            chain_components(g)
        assert not is_chain_form(g)

    def test_triangle_rejected(self):
        g = graph_with_pairs(3, [(1, 2), (2, 3), (1, 3)])
        with pytest.raises(NotChainFormError):
            chain_components(g)

    def test_larger_cycle_rejected(self):
        g = graph_with_pairs(4, [(1, 2), (2, 3), (3, 4), (4, 1)])
        with pytest.raises(NotChainFormError):
            chain_components(g)

    def test_resolved_pairs_still_count_as_conflicts(self):
        g = graph_with_pairs(3, [(1, 2), (2, 3), (1, 3)])
        g.resolve(1, 2)
        g.resolve(2, 3)
        g.resolve(1, 3)
        # Still a triangle in the conflict graph even though resolved.
        assert not is_chain_form(g)

    def test_figure2_is_chain_form(self):
        g = graph_with_pairs(3, [(1, 2), (2, 3)])
        assert chain_components(g) == [[1, 2, 3]]


class TestWouldRemainChainForm:
    def test_no_conflicts_always_ok(self):
        g = graph_with_pairs(3, [(1, 2), (2, 3)])
        assert would_remain_chain_form(g, 9, [])

    def test_attach_to_endpoint_ok(self):
        g = graph_with_pairs(3, [(1, 2), (2, 3)])
        assert would_remain_chain_form(g, 9, [1])
        assert would_remain_chain_form(g, 9, [3])

    def test_attach_to_middle_rejected(self):
        g = graph_with_pairs(3, [(1, 2), (2, 3)])
        assert not would_remain_chain_form(g, 9, [2])

    def test_three_conflicts_rejected(self):
        g = graph_with_pairs(3, [])
        assert not would_remain_chain_form(g, 9, [1, 2, 3])

    def test_bridge_between_two_components_ok(self):
        g = graph_with_pairs(4, [(1, 2), (3, 4)])
        assert would_remain_chain_form(g, 9, [2, 3])

    def test_closing_a_cycle_rejected(self):
        g = graph_with_pairs(3, [(1, 2), (2, 3)])
        assert not would_remain_chain_form(g, 9, [1, 3])

    def test_check_is_pure(self):
        g = graph_with_pairs(3, [(1, 2)])
        would_remain_chain_form(g, 9, [3])
        assert 9 not in g
        assert g.conflict_neighbors(3) == set()

    def test_prediction_matches_actual_insertion(self):
        # Cross-validate the pure predicate against really inserting.
        import itertools

        base_pairs = [(1, 2), (2, 3), (4, 5)]
        for conflict_set in itertools.chain.from_iterable(
                itertools.combinations(range(1, 6), k) for k in range(4)):
            g = graph_with_pairs(5, base_pairs)
            predicted = would_remain_chain_form(g, 9, conflict_set)
            g.add_transaction(9, 1)
            for other in conflict_set:
                g.ensure_pair(9, other)
            assert predicted == is_chain_form(g), (
                f"mismatch for conflicts {conflict_set}")
