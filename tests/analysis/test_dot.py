"""Tests for the Graphviz DOT export."""

from repro.analysis.dot import wtpg_to_dot
from repro.core import WTPG


def figure2_graph():
    g = WTPG()
    g.add_transaction(1, 5)
    g.add_transaction(2, 2)
    g.add_transaction(3, 4)
    g.ensure_pair(1, 2).raise_weight_to(2, 1)
    e = g.ensure_pair(2, 3)
    e.raise_weight_to(3, 4)
    e.raise_weight_to(2, 2)
    return g


def test_structure_and_labels():
    dot = wtpg_to_dot(figure2_graph())
    assert dot.startswith('digraph "WTPG" {')
    assert dot.rstrip().endswith("}")
    assert 'T1 [label="T1\\nw=5"]' in dot
    assert "T0 -> T1" in dot


def test_unresolved_pairs_are_dashed_double_arrows():
    dot = wtpg_to_dot(figure2_graph())
    assert "style=dashed, dir=both" in dot


def test_resolved_pairs_are_solid_directed(
):
    g = figure2_graph()
    g.resolve(1, 2)
    dot = wtpg_to_dot(g)
    assert 'T1 -> T2 [label="1", penwidth=1.5]' in dot


def test_without_t0():
    dot = wtpg_to_dot(figure2_graph(), include_t0=False)
    assert "T0" not in dot


def test_title_is_quoted():
    dot = wtpg_to_dot(WTPG(), title='my "graph"')
    assert 'digraph "my \\"graph\\""' in dot


def test_empty_graph_renders():
    dot = wtpg_to_dot(WTPG())
    assert dot.count("->") == 0
