"""Unit tests for text tables and ASCII charts."""

import math

from repro.analysis import ascii_chart, format_series_table, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.123]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-" in lines[1]
        assert "2.500" in lines[2]

    def test_none_renders_empty(self):
        text = format_table(["x"], [[None]])
        assert text.splitlines()[2].strip() == ""

    def test_floats_formatted(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.123" in text


class TestFormatSeriesTable:
    def test_figure_shape(self):
        text = format_series_table("lambda", [0.2, 0.4],
                                   {"A": [1.0, 2.0], "B": [3.0, 4.0]})
        lines = text.splitlines()
        assert "lambda" in lines[0]
        assert "A" in lines[0] and "B" in lines[0]
        assert len(lines) == 4

    def test_short_series_padded_with_blank(self):
        text = format_series_table("x", [1, 2], {"A": [5.0]})
        assert len(text.splitlines()) == 4


class TestAsciiChart:
    def series(self):
        return {"ASL": [(0.1, 10.0), (0.5, 30.0)],
                "C2PL": [(0.1, 12.0), (0.5, 80.0)]}

    def test_contains_markers_and_legend(self):
        chart = ascii_chart(self.series())
        assert "A=ASL" in chart
        assert "C=C2PL" in chart

    def test_axis_labels(self):
        chart = ascii_chart(self.series(), x_label="rate", y_label="RT")
        assert "rate" in chart
        assert chart.splitlines()[0] == "RT"

    def test_infinite_points_skipped(self):
        chart = ascii_chart({"X": [(0.1, 5.0), (0.2, math.inf)]})
        assert "X=X" in chart

    def test_all_infinite_reports_no_data(self):
        assert ascii_chart({"X": [(0.1, math.inf)]}) == "(no finite data)"

    def test_y_max_clamps(self):
        chart = ascii_chart({"X": [(0, 1e9)]}, y_max=100)
        assert "1e+09" not in chart

    def test_marker_collision_falls_back(self):
        chart = ascii_chart({"AA": [(0, 1)], "AB": [(1, 2)]})
        assert "A=AA" in chart
        # AB gets its second letter since A is taken.
        assert "B=AB" in chart

    def test_single_point_series(self):
        chart = ascii_chart({"X": [(1.0, 5.0)]})
        assert "X=X" in chart
