"""Unit tests for partitions and the catalog."""

import pytest

from repro.machine import Catalog, Partition
from repro.errors import ConfigurationError


class TestPartition:
    def test_valid_partition(self):
        p = Partition(3, 5.0, node=3)
        assert p.pid == 3 and p.size_objects == 5.0

    def test_negative_pid_rejected(self):
        with pytest.raises(ConfigurationError):
            Partition(-1, 5.0, node=0)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ConfigurationError):
            Partition(0, 0.0, node=0)


class TestCatalogUniform:
    def test_paper_placement_rule(self):
        catalog = Catalog.uniform(16, size_objects=5.0, num_nodes=8)
        assert len(catalog) == 16
        for pid in range(16):
            assert catalog.node_of(pid) == pid % 8

    def test_sizes(self):
        catalog = Catalog.uniform(4, size_objects=2.5, num_nodes=2)
        assert catalog.size_of(3) == 2.5

    def test_partitions_on_node(self):
        catalog = Catalog.uniform(16, size_objects=5.0, num_nodes=8)
        on_zero = catalog.partitions_on_node(0)
        assert [p.pid for p in on_zero] == [0, 8]

    def test_unknown_partition_rejected(self):
        catalog = Catalog.uniform(4, 1.0, 2)
        with pytest.raises(ConfigurationError):
            catalog.node_of(99)

    def test_duplicate_pid_rejected(self):
        with pytest.raises(ConfigurationError):
            Catalog([Partition(0, 1.0, 0), Partition(0, 2.0, 1)])

    def test_empty_catalog_rejected(self):
        with pytest.raises(ConfigurationError):
            Catalog([])


class TestCatalogHotSet:
    def test_experiment2_layout(self):
        catalog = Catalog.hot_set(num_hots=4, hot_size=1.0, num_readonly=8,
                                  readonly_size=5.0, num_nodes=8)
        assert len(catalog) == 12
        assert catalog.read_only_pids == list(range(8))
        assert catalog.hot_pids == [8, 9, 10, 11]
        assert catalog.size_of(0) == 5.0
        assert catalog.size_of(8) == 1.0

    def test_one_readonly_partition_per_node(self):
        catalog = Catalog.hot_set(4, 1.0, 8, 5.0, 8)
        nodes = {catalog.node_of(pid) for pid in catalog.read_only_pids}
        assert nodes == set(range(8))

    def test_contains(self):
        catalog = Catalog.hot_set(4, 1.0, 8, 5.0, 8)
        assert 11 in catalog
        assert 12 not in catalog
