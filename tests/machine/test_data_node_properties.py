"""Property tests of the data node's round-robin fairness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Step, TransactionRuntime, TransactionSpec
from repro.engine import Environment
from repro.machine import DataNode


def txn(tid):
    return TransactionRuntime(TransactionSpec(tid, [Step.read(0, 1)]))


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                max_size=5))
def test_work_conservation_and_makespan(sizes):
    """Total busy time = total objects x ObjTime; the node never idles
    while work is queued."""
    env = Environment()
    node = DataNode(env, 0, obj_time=100)
    events = [node.submit(txn(i), objects=size)
              for i, size in enumerate(sizes, start=1)]
    env.run()
    total = sum(sizes)
    assert node.busy_time == pytest.approx(total * 100)
    assert env.now == pytest.approx(total * 100)  # no idling
    assert all(e.triggered for e in events)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=6), min_size=2,
                max_size=5))
def test_round_robin_progress_is_fair(sizes):
    """Between simultaneous arrivals, per-transaction progress never
    diverges by more than one object (round-robin quantum)."""
    env = Environment()
    progress = {}
    node = DataNode(env, 0, obj_time=100,
                    on_objects=lambda t, n: progress.__setitem__(
                        t.tid, progress.get(t.tid, 0) + n))
    remaining = dict(enumerate(sizes, start=1))
    for tid, size in remaining.items():
        node.submit(txn(tid), objects=size)

    while env.peek() != float("inf"):
        env.step()
        # Fairness invariant: among unfinished transactions, progress
        # differs by at most one object.
        unfinished = [tid for tid, size in remaining.items()
                      if progress.get(tid, 0) < size]
        if len(unfinished) >= 2:
            values = [progress.get(tid, 0) for tid in unfinished]
            assert max(values) - min(values) <= 1.0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0.1, max_value=3.0), min_size=1,
                max_size=4))
def test_fractional_costs_complete_exactly(costs):
    env = Environment()
    node = DataNode(env, 0, obj_time=1000)
    for i, cost in enumerate(costs, start=1):
        node.submit(txn(i), objects=cost)
    env.run()
    assert node.objects_processed == pytest.approx(sum(costs))
