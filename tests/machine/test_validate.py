"""Tests for SimulationResult.validate() — the one-call checker."""

import pytest

from repro import Catalog, SimulationParameters
from repro.core import Step, TransactionSpec
from repro.errors import SerializationViolationError
from repro.machine import Cluster
from repro.machine.trace import Tracer
from repro.workloads import pattern1, pattern1_catalog


def run(scheduler="K2", record_history=True, tracer=None, rate=0.5):
    params = SimulationParameters(scheduler=scheduler, arrival_rate_tps=rate,
                                  sim_clocks=120_000, seed=4,
                                  num_partitions=16)
    cluster = Cluster(params, pattern1(), catalog=pattern1_catalog(),
                      record_history=record_history, tracer=tracer)
    return cluster.run()


@pytest.mark.parametrize("scheduler", ["K2", "CHAIN", "C2PL", "2PL"])
def test_validate_passes_for_correct_schedulers(scheduler):
    result = run(scheduler=scheduler, tracer=Tracer())
    assert result.metrics.commits > 0
    result.validate()


def test_validate_catches_nodc_violations():
    def hot_writers(tid, streams):
        return TransactionSpec(tid, [Step.write(0, 2)])

    params = SimulationParameters(scheduler="NODC", arrival_rate_tps=1.0,
                                  sim_clocks=150_000, seed=4,
                                  num_partitions=1)
    cluster = Cluster(params, hot_writers,
                      catalog=Catalog.uniform(1, 5.0, 8),
                      record_history=True)
    result = cluster.run()
    with pytest.raises(SerializationViolationError):
        result.validate()


def test_validate_without_history_or_trace_checks_scheduler_state():
    result = run(record_history=False)
    assert result.history is None and result.tracer is None
    result.validate()  # still exercises the invariant checker


def test_validate_is_idempotent():
    result = run(tracer=Tracer())
    result.validate()
    result.validate()
