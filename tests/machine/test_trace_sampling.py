"""Sampled observability: Tracer sample_rate / counters_only switches."""

import json

import pytest

from repro.config import SimulationParameters
from repro.machine.cluster import Cluster
from repro.machine.trace import EventType, Tracer, validate_trace
from repro.workloads import pattern1, pattern1_catalog


def run_with(tracer, **overrides):
    params = SimulationParameters(scheduler="K2", arrival_rate_tps=0.6,
                                  sim_clocks=60_000, seed=7,
                                  num_partitions=16, **overrides)
    cluster = Cluster(params, pattern1(), catalog=pattern1_catalog(),
                      tracer=tracer)
    cluster.run()
    return tracer


def trace_bytes(tracer):
    return "\n".join(e.to_json() for e in tracer.events)


def test_rate_one_is_bit_identical_to_unsampled():
    full = run_with(Tracer())
    sampled = run_with(Tracer(sample_rate=1.0))
    assert trace_bytes(full) == trace_bytes(sampled)


def test_sampling_keeps_whole_transactions():
    full = run_with(Tracer())
    half = run_with(Tracer(sample_rate=0.5))
    kept = set(half.transactions())
    assert 0 < len(kept) < len(full.transactions())
    # Every kept transaction's timeline is byte-identical to the full
    # trace's — sampling drops whole transactions, never single events.
    for tid in kept:
        assert ([e.to_json() for e in half.timeline(tid)]
                == [e.to_json() for e in full.timeline(tid)])
    # The sampled trace still passes lifecycle validation.
    validate_trace(half)


def test_sampling_decision_is_deterministic():
    first = run_with(Tracer(sample_rate=0.3))
    second = run_with(Tracer(sample_rate=0.3))
    assert trace_bytes(first) == trace_bytes(second)


def test_rate_zero_keeps_only_machine_events():
    tracer = run_with(Tracer(sample_rate=0.0))
    assert all(e.tid < 0 for e in tracer.events)


def test_machine_events_survive_sampling():
    from repro.faults import FaultPlan, NodeCrash
    params = SimulationParameters(scheduler="K2", arrival_rate_tps=0.6,
                                  sim_clocks=60_000, seed=7,
                                  num_partitions=16)
    tracer = Tracer(sample_rate=0.0)
    plan = FaultPlan(crashes=(NodeCrash(2, 15_000.0, recover_at=25_000.0),))
    Cluster(params, pattern1(), catalog=pattern1_catalog(),
            tracer=tracer, fault_plan=plan).run()
    kinds = {e.kind for e in tracer.events}
    assert EventType.NODE_CRASHED in kinds


def test_counters_only_matches_full_counts():
    full = run_with(Tracer())
    counted = run_with(Tracer(counters_only=True))
    assert counted.events == []
    assert counted.summary() == full.summary()


def test_counters_only_composes_with_sampling():
    sampled = run_with(Tracer(sample_rate=0.5))
    counted = run_with(Tracer(sample_rate=0.5, counters_only=True))
    assert counted.summary() == sampled.summary()


def test_cluster_applies_config_sample_rate():
    tracer = Tracer()
    run_with(tracer, trace_sample_rate=0.5)
    assert tracer.sample_rate == 0.5


def test_invalid_rates_rejected():
    with pytest.raises(ValueError):
        Tracer(sample_rate=1.5)
    tracer = Tracer()
    with pytest.raises(ValueError):
        tracer.sample_rate = -0.1
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        SimulationParameters(trace_sample_rate=2.0)
    with pytest.raises(ConfigurationError):
        SimulationParameters(node_mode="warp")


def test_params_round_trip_with_new_fields():
    params = SimulationParameters(node_mode="reference",
                                  trace_sample_rate=0.25)
    clone = SimulationParameters.from_json(params.to_json())
    assert clone == params
    assert json.loads(params.to_json())["node_mode"] == "reference"
