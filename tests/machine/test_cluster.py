"""Integration tests: full simulations on the assembled machine."""

import pytest

from repro import SimulationParameters, run_simulation
from repro.core import Step, TransactionSpec
from repro.errors import SerializationViolationError
from repro.machine import Catalog, Cluster
from repro.workloads import (pattern1, pattern1_catalog, pattern2,
                             pattern2_catalog)

FAST = dict(sim_clocks=120_000, arrival_rate_tps=0.4, seed=3)


def single_partition_workload(tid, streams):
    return TransactionSpec(tid, [Step.write(0, 2)])


class TestBasicRuns:
    def test_runs_and_commits_transactions(self):
        params = SimulationParameters(scheduler="C2PL", **FAST)
        result = run_simulation(params, pattern1(), catalog=pattern1_catalog())
        assert result.metrics.commits > 10
        assert result.metrics.arrivals >= result.metrics.commits
        assert 0 < result.metrics.throughput_tps < 1.5

    def test_deterministic_given_seed(self):
        params = SimulationParameters(scheduler="K2", **FAST)
        a = run_simulation(params, pattern1(), catalog=pattern1_catalog())
        b = run_simulation(params, pattern1(), catalog=pattern1_catalog())
        assert a.metrics.commits == b.metrics.commits
        assert a.metrics.mean_response_time == b.metrics.mean_response_time

    def test_different_seeds_differ(self):
        base = SimulationParameters(scheduler="C2PL", **FAST)
        a = run_simulation(base, pattern1(), catalog=pattern1_catalog())
        b = run_simulation(base.with_overrides(seed=99), pattern1(),
                           catalog=pattern1_catalog())
        assert a.metrics.mean_response_time != b.metrics.mean_response_time

    @pytest.mark.parametrize("name", ["CHAIN", "K2", "ASL", "C2PL",
                                      "CHAIN-C2PL", "K2-C2PL"])
    def test_all_correct_schedulers_produce_serializable_histories(self, name):
        params = SimulationParameters(scheduler=name, **FAST)
        result = run_simulation(params, pattern1(), catalog=pattern1_catalog(),
                                record_history=True)
        assert result.metrics.commits > 0
        result.history.check_lock_exclusion()
        result.history.check_serializable()

    def test_nodc_violates_serializability_under_contention(self):
        params = SimulationParameters(scheduler="NODC", sim_clocks=200_000,
                                      arrival_rate_tps=1.0, seed=3,
                                      num_partitions=1)
        catalog = Catalog.uniform(1, size_objects=5.0, num_nodes=8)
        result = run_simulation(params, single_partition_workload,
                                catalog=catalog, record_history=True)
        with pytest.raises(SerializationViolationError):
            result.history.check_lock_exclusion()


class TestLoadBehaviour:
    def test_response_time_increases_with_load(self):
        rts = []
        for rate in (0.2, 0.9):
            params = SimulationParameters(scheduler="C2PL", sim_clocks=300_000,
                                          arrival_rate_tps=rate, seed=5)
            result = run_simulation(params, pattern1(),
                                    catalog=pattern1_catalog())
            rts.append(result.metrics.mean_response_time)
        assert rts[1] > rts[0]

    def test_nodc_throughput_tracks_arrival_rate_when_underloaded(self):
        params = SimulationParameters(scheduler="NODC", sim_clocks=400_000,
                                      arrival_rate_tps=0.5, seed=2)
        result = run_simulation(params, pattern1(), catalog=pattern1_catalog())
        assert result.metrics.throughput_tps == pytest.approx(0.5, abs=0.1)

    def test_minimum_response_time_bound(self):
        """A Pattern1 transaction needs >= 7.2 objects = 7200 clocks."""
        params = SimulationParameters(scheduler="NODC", sim_clocks=200_000,
                                      arrival_rate_tps=0.1, seed=2)
        result = run_simulation(params, pattern1(), catalog=pattern1_catalog())
        assert result.metrics.mean_response_time >= 7200

    def test_hot_set_workload_runs(self):
        params = SimulationParameters(scheduler="K2", sim_clocks=150_000,
                                      arrival_rate_tps=0.4, seed=4,
                                      num_partitions=16)
        result = run_simulation(params, pattern2(num_hots=8),
                                catalog=pattern2_catalog(num_hots=8),
                                record_history=True)
        assert result.metrics.commits > 5
        result.history.check_serializable()


class TestAccounting:
    def test_weight_messages_track_objects(self):
        """Every processed object sends one weight-adjust message."""
        params = SimulationParameters(scheduler="ASL", sim_clocks=150_000,
                                      arrival_rate_tps=0.3, seed=6)
        result = run_simulation(params, pattern1(), catalog=pattern1_catalog())
        # Pattern1 = 7.2 objects across 4 steps -> 8 quanta per txn
        # (1 + 5 + 1(0.2 rounded up... counts quanta: 1,5,1,1) = 8).
        assert result.metrics.weight_messages >= 8 * result.metrics.commits

    def test_scheduler_stats_surface_in_metrics(self):
        params = SimulationParameters(scheduler="CHAIN", **FAST)
        result = run_simulation(params, pattern1(), catalog=pattern1_catalog())
        stats = result.metrics.scheduler_stats
        assert stats["commits"] == result.metrics.commits
        assert stats["optimizations"] > 0

    def test_cn_utilization_positive_and_bounded(self):
        params = SimulationParameters(scheduler="C2PL", **FAST)
        result = run_simulation(params, pattern1(), catalog=pattern1_catalog())
        assert 0 < result.metrics.cn_utilization <= 1.0

    def test_warmup_discards_early_transactions(self):
        params = SimulationParameters(scheduler="NODC", sim_clocks=200_000,
                                      arrival_rate_tps=0.5, seed=2,
                                      warmup_clocks=100_000)
        warm = run_simulation(params, pattern1(), catalog=pattern1_catalog())
        cold = run_simulation(params.with_overrides(warmup_clocks=0.0),
                              pattern1(), catalog=pattern1_catalog())
        assert warm.metrics.commits < cold.metrics.commits
