"""Hypothesis sweep over the whole machine: accounting invariants.

Any (scheduler, arrival rate, seed) combination must satisfy basic
bookkeeping laws.  Runs are kept tiny; the value is breadth across the
configuration space, not statistical quality.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import SimulationParameters, run_simulation
from repro.workloads import pattern1, pattern1_catalog

SCHEDULERS = ["ASL", "C2PL", "CHAIN", "K2", "NODC", "2PL", "WAIT-DIE",
              "CHAIN-C2PL", "K2-C2PL"]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scheduler=st.sampled_from(SCHEDULERS),
       rate=st.floats(min_value=0.1, max_value=1.2),
       seed=st.integers(min_value=0, max_value=1000))
def test_accounting_invariants(scheduler, rate, seed):
    params = SimulationParameters(scheduler=scheduler,
                                  arrival_rate_tps=rate,
                                  sim_clocks=60_000, seed=seed,
                                  num_partitions=16)
    metrics = run_simulation(params, pattern1(),
                             catalog=pattern1_catalog()).metrics

    assert 0 <= metrics.commits <= metrics.arrivals
    assert 0 <= metrics.dn_utilization <= 1.0
    assert 0 <= metrics.cn_utilization <= 1.0
    assert metrics.throughput_tps >= 0
    assert metrics.lock_retries >= 0
    assert metrics.wasted_objects >= 0
    if scheduler not in ("2PL", "WAIT-DIE"):
        assert metrics.aborts == 0
        assert metrics.wasted_objects == 0
    if metrics.commits:
        # Pattern1 needs at least 7.2 committed objects' worth of time.
        assert metrics.mean_response_time >= 7200
        # Each commit processed 7.2 objects in >= 8 quanta (messages),
        # wasted work adds more.
        assert metrics.weight_messages >= 8 * metrics.commits
    stats = metrics.scheduler_stats
    assert stats["commits"] == metrics.commits
    assert stats["grants"] >= 0
