"""Focused tests of the control node: CPU costing and queueing."""

import pytest

from repro import SimulationParameters
from repro.core import Step, TransactionRuntime, TransactionSpec
from repro.core.history import History
from repro.core.schedulers import make_scheduler
from repro.engine import Environment
from repro.machine import Catalog, ControlNode, DataNode
from repro.metrics import MetricsCollector


def build(scheduler_name="C2PL", **param_overrides):
    params = SimulationParameters(scheduler=scheduler_name,
                                  num_partitions=8, **param_overrides)
    env = Environment()
    catalog = Catalog.uniform(8, 5.0, params.num_nodes)
    nodes = [DataNode(env, i, params.obj_time)
             for i in range(params.num_nodes)]
    scheduler = make_scheduler(scheduler_name, **params.scheduler_kwargs())
    metrics = MetricsCollector()
    cn = ControlNode(env, params, scheduler, catalog, nodes, metrics,
                     history=History())
    return env, cn, metrics


def txn(tid, steps, arrival=0.0):
    return TransactionRuntime(TransactionSpec(tid, steps),
                              arrival_time=arrival)


class TestSingleTransaction:
    def test_lifecycle_times_add_up(self):
        env, cn, metrics = build(startup_time=20, commit_time=50,
                                 admission_time=5, dd_time=5)
        t = txn(1, [Step.read(0, 2)])
        env.process(cn.transaction_process(t))
        env.run()
        # admission 5 + startup 20 + lock 5 + work 2000 + commit 50.
        assert env.now == 2080
        assert t.commit_time == 2080
        assert metrics.commits == 1

    def test_active_transactions_gauge(self):
        env, cn, _ = build()
        t = txn(1, [Step.read(0, 1)])
        env.process(cn.transaction_process(t))
        env.run(until=500)
        assert cn.active_transactions == 1
        env.run()
        assert cn.active_transactions == 0

    def test_history_records_holds(self):
        env, cn, _ = build()
        t = txn(1, [Step.read(0, 1), Step.write(1, 1)])
        env.process(cn.transaction_process(t))
        env.run()
        assert len(cn.history.holds) == 2
        for hold in cn.history.holds:
            assert hold.released_at == t.commit_time


class TestCpuQueueing:
    def test_control_work_serialises_on_cn_cpu(self):
        """Two simultaneous arrivals: the second's admission waits for
        the first's admission+startup on the single CN CPU."""
        env, cn, _ = build(startup_time=100, admission_time=50,
                           commit_time=0, dd_time=0)
        t1 = txn(1, [Step.read(0, 1)])
        t2 = txn(2, [Step.read(1, 1)])
        env.process(cn.transaction_process(t1))
        env.process(cn.transaction_process(t2))
        env.run()
        # Decisions are instantaneous (state changes at call time); the
        # CPU *charges* serialise FIFO: admit1 [0,50), admit2 [50,100),
        # startup1 [100,200) -> t1 starts at 200; startup2 [200,300) ->
        # t2 starts at 300.
        assert t1.start_time == pytest.approx(200)
        assert t2.start_time == pytest.approx(300)

    def test_utilization_counts_all_control_work(self):
        env, cn, _ = build(startup_time=100, admission_time=50,
                           commit_time=200, dd_time=25)
        t = txn(1, [Step.read(0, 1)])
        env.process(cn.transaction_process(t))
        env.run()
        busy = cn.cpu.busy_time()
        assert busy == pytest.approx(50 + 100 + 25 + 200)
        assert cn.utilization(env.now) == pytest.approx(busy / env.now)

    def test_zero_cost_work_skips_cpu(self):
        env, cn, _ = build(startup_time=0, admission_time=0,
                           commit_time=0, dd_time=0)
        t = txn(1, [Step.read(0, 1)])
        env.process(cn.transaction_process(t))
        env.run()
        assert cn.cpu.busy_time() == 0.0
        assert env.now == 1000  # pure data-node time


class TestRetrySemantics:
    def test_blocked_request_retries_after_delay(self):
        env, cn, metrics = build(retry_delay=500, admission_time=0,
                                 startup_time=0, commit_time=0, dd_time=0)
        t1 = txn(1, [Step.write(0, 2)])
        t2 = txn(2, [Step.write(0, 1)])
        env.process(cn.transaction_process(t1))
        env.process(cn.transaction_process(t2))
        env.run()
        assert metrics.lock_retries > 0
        assert t1.commit_time == 2000
        # t2 waits for t1's commit, then its next 500ms poll grants.
        assert t2.commit_time > 2000
        assert (t2.commit_time - 1000) % 500 == pytest.approx(0, abs=1e-6)

    def test_doom_during_commit_window_leaves_no_stale_entry(self):
        """Regression (RL006 review follow-up): a cascade doom landing
        while the coordinator is charging commit_time loses the race —
        the commit proceeds — but its `_doomed` entry used to outlive
        the transaction forever, accumulating across cascade-heavy
        faulty runs.  The commit path must reap it."""
        env, cn, metrics = build(startup_time=20, commit_time=50,
                                 admission_time=5, dd_time=5)
        t = txn(1, [Step.read(0, 2)])
        env.process(cn.transaction_process(t))
        landed = []

        def doom_mid_commit():
            # Commit window is [2030, 2080) for this configuration
            # (admission 5 + startup 20 + lock 5 + work 2000 + commit 50).
            yield env.timeout(2040)
            landed.append(cn.request_abort(1, "cascade"))

        env.process(doom_mid_commit())
        env.run()
        assert landed == [True]          # the doom really hit the window
        assert metrics.commits == 1      # ...and the commit still won
        assert t.commit_time == 2080
        assert cn._doomed == {}          # no stale entry survives

    def test_doom_during_startup_window_lands(self):
        """Regression: a cascade doom that arrives while the coordinator
        is charging startup_time used to be silently void — the tid
        entered `_running` only *after* the startup yield, so the victim
        ran its whole attempt with locks its doomed predecessor's abort
        should have cascaded away.  The tid must be doomable from the
        instant the scheduler holds admission state for it."""
        env, cn, metrics = build(startup_time=20, commit_time=50,
                                 admission_time=5, dd_time=5,
                                 retry_delay=100)
        t = txn(1, [Step.read(0, 2)])
        env.process(cn.transaction_process(t))
        landed = []

        def doom_mid_startup():
            # Startup window is [5, 25) (admission 5 + startup 20).
            yield env.timeout(10)
            landed.append(cn.request_abort(1, "cascade"))

        env.process(doom_mid_startup())
        env.run()
        assert landed == [True]          # the doom hit, not voided
        assert metrics.void_cascades == 0
        assert metrics.cascade_aborts == 1
        assert metrics.restarts == 1     # the victim re-ran from scratch
        assert metrics.commits == 1
        # Attempt 1 died at the first decision point after startup (t=25,
        # zero objects wasted), so the retry pushes the commit past the
        # clean-run instant 2080.
        assert metrics.wasted_objects == 0.0
        assert t.commit_time > 2080

    def test_cascade_without_victim_is_counted_void(self):
        """A doom aimed at a tid the CN is not running (already
        committed, or never admitted) is void — and counted, so cascade
        accounting stays conserved."""
        env, cn, metrics = build(startup_time=20, commit_time=50,
                                 admission_time=5, dd_time=5)
        t = txn(1, [Step.read(0, 2)])
        env.process(cn.transaction_process(t))

        def doom_late():
            yield env.timeout(2090)      # after the commit at 2080
            assert cn.request_abort(1, "cascade") is False
            assert cn.request_abort(99, "cascade") is False  # unknown tid

        env.process(doom_late())
        env.run()
        assert metrics.commits == 1
        assert metrics.void_cascades == 2
        assert metrics.cascade_aborts == 0

    def test_admission_rejection_counts_attempts(self):
        env, cn, _ = build(scheduler_name="ASL", retry_delay=500,
                           startup_time=0, commit_time=0)
        t1 = txn(1, [Step.write(0, 3)])
        t2 = txn(2, [Step.write(0, 1)])
        env.process(cn.transaction_process(t1))
        env.process(cn.transaction_process(t2))
        env.run()
        assert t2.attempts > 0  # had to re-submit while T1 held the lock
        assert t2.commit_time > t1.commit_time
