"""Tests for the tracing subsystem and traced full runs."""

import pytest

from repro import SimulationParameters
from repro.errors import SimulationError
from repro.machine import Cluster
from repro.machine.trace import (EventType, TraceEvent, Tracer,
                                 validate_trace)
from repro.workloads import pattern1, pattern1_catalog


def traced_run(scheduler="C2PL", clocks=150_000, rate=0.5, seed=3):
    tracer = Tracer()
    params = SimulationParameters(scheduler=scheduler, arrival_rate_tps=rate,
                                  sim_clocks=clocks, seed=seed,
                                  num_partitions=16)
    cluster = Cluster(params, pattern1(), catalog=pattern1_catalog(),
                      tracer=tracer)
    result = cluster.run()
    return tracer, result


class TestTracer:
    def test_emit_and_query(self):
        tracer = Tracer()
        tracer.emit(1.0, EventType.ARRIVAL, 5)
        tracer.emit(2.0, EventType.ADMITTED, 5, attempts=1)
        tracer.emit(3.0, EventType.ARRIVAL, 6)
        assert len(tracer) == 3
        assert tracer.transactions() == [5, 6]
        assert [e.kind for e in tracer.timeline(5)] == [
            EventType.ARRIVAL, EventType.ADMITTED]
        assert tracer.count(EventType.ARRIVAL) == 2
        assert tracer.summary()["arrival"] == 2

    def test_json_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.emit(1.5, EventType.LOCK_GRANTED, 2, partition=4, mode="X")
        path = tmp_path / "trace.jsonl"
        tracer.dump_jsonl(path)
        loaded = Tracer.load_jsonl(path)
        assert len(loaded) == 1
        event = loaded.events[0]
        assert event.kind is EventType.LOCK_GRANTED
        assert event.detail == {"partition": 4, "mode": "X"}
        assert event.time == 1.5

    def test_event_json_stable(self):
        event = TraceEvent(1.0, EventType.COMMITTED, 9, {"x": 1})
        assert TraceEvent.from_json(event.to_json()) == event


class TestValidator:
    def test_valid_lifecycle_passes(self):
        tracer = Tracer()
        tracer.emit(0, EventType.ARRIVAL, 1)
        tracer.emit(1, EventType.ADMITTED, 1)
        tracer.emit(2, EventType.LOCK_GRANTED, 1)
        tracer.emit(2, EventType.STEP_DISPATCHED, 1)
        tracer.emit(5, EventType.STEP_COMPLETED, 1)
        tracer.emit(6, EventType.COMMITTED, 1)
        validate_trace(tracer)

    def test_commit_without_admission_rejected(self):
        tracer = Tracer()
        tracer.emit(0, EventType.ARRIVAL, 1)
        tracer.emit(1, EventType.COMMITTED, 1)
        with pytest.raises(SimulationError, match="without admission"):
            validate_trace(tracer)

    def test_event_before_arrival_rejected(self):
        tracer = Tracer()
        tracer.emit(0, EventType.ADMITTED, 1)
        with pytest.raises(SimulationError, match="before arrival"):
            validate_trace(tracer)

    def test_time_reversal_rejected(self):
        tracer = Tracer()
        tracer.emit(5, EventType.ARRIVAL, 1)
        tracer.emit(3, EventType.ADMITTED, 1)
        with pytest.raises(SimulationError, match="backwards"):
            validate_trace(tracer)

    def test_event_after_commit_rejected(self):
        tracer = Tracer()
        tracer.emit(0, EventType.ARRIVAL, 1)
        tracer.emit(1, EventType.ADMITTED, 1)
        tracer.emit(2, EventType.COMMITTED, 1)
        tracer.emit(3, EventType.LOCK_GRANTED, 1)
        with pytest.raises(SimulationError, match="after commit"):
            validate_trace(tracer)

    def test_dispatch_completion_mismatch_rejected(self):
        tracer = Tracer()
        tracer.emit(0, EventType.ARRIVAL, 1)
        tracer.emit(1, EventType.ADMITTED, 1)
        tracer.emit(2, EventType.LOCK_GRANTED, 1)
        tracer.emit(2, EventType.STEP_DISPATCHED, 1)
        tracer.emit(3, EventType.COMMITTED, 1)
        with pytest.raises(SimulationError, match="dispatches"):
            validate_trace(tracer)


class TestTracedRuns:
    @pytest.mark.parametrize("scheduler", ["C2PL", "CHAIN", "K2", "ASL"])
    def test_full_run_traces_are_well_formed(self, scheduler):
        tracer, result = traced_run(scheduler=scheduler)
        assert result.metrics.commits > 0
        validate_trace(tracer)
        assert tracer.count(EventType.COMMITTED) == result.metrics.commits

    def test_pattern1_commits_have_four_grants(self):
        tracer, _ = traced_run()
        for tid in tracer.transactions():
            events = tracer.timeline(tid)
            if any(e.kind is EventType.COMMITTED for e in events):
                grants = [e for e in events
                          if e.kind is EventType.LOCK_GRANTED]
                assert len(grants) == 4  # Pattern1 has four steps

    def test_retry_events_recorded_under_contention(self):
        tracer, result = traced_run(scheduler="C2PL", rate=0.8)
        retries = (tracer.count(EventType.LOCK_BLOCKED)
                   + tracer.count(EventType.LOCK_DELAYED))
        assert retries == result.metrics.lock_retries

    def test_asl_rejections_traced(self):
        tracer, _ = traced_run(scheduler="ASL", rate=0.8)
        assert tracer.count(EventType.ADMISSION_REJECTED) > 0

    def test_dispatch_node_matches_placement(self):
        tracer, _ = traced_run()
        for event in tracer.of_kind(EventType.STEP_DISPATCHED):
            assert event.detail["node"] == event.detail.get("node")
        granted = tracer.of_kind(EventType.LOCK_GRANTED)
        dispatched = tracer.of_kind(EventType.STEP_DISPATCHED)
        # Each dispatch follows a grant for the same txn/step; partition
        # placement is pid mod 8.
        by_key = {(e.tid, e.detail["step"]): e.detail["partition"]
                  for e in granted}
        for event in dispatched:
            partition = by_key[(event.tid, event.detail["step"])]
            assert event.detail["node"] == partition % 8
