"""Metamorphic 'simulation physics' tests of the whole machine.

These assert directional laws that must hold regardless of scheduler
internals — the kind of checks that catch unit mix-ups and accounting
bugs that pointwise tests miss.
"""

import pytest

from repro import SimulationParameters, run_simulation
from repro.workloads import pattern1, pattern1_catalog

BASE = dict(sim_clocks=200_000, seed=13)


def run(scheduler="NODC", rate=0.3, **overrides):
    kwargs = dict(BASE)
    kwargs.update(overrides)
    params = SimulationParameters(scheduler=scheduler, arrival_rate_tps=rate,
                                  num_partitions=16, **kwargs)
    return run_simulation(params, pattern1(), catalog=pattern1_catalog())


class TestCapacityLaws:
    def test_commits_never_exceed_arrivals(self):
        for scheduler in ("NODC", "C2PL", "K2"):
            metrics = run(scheduler=scheduler, rate=0.8).metrics
            assert metrics.commits <= metrics.arrivals

    def test_throughput_never_exceeds_resource_capacity(self):
        # 8 nodes / 7.2 objects = 1.11 TPS is a hard ceiling.
        metrics = run(scheduler="NODC", rate=2.0).metrics
        assert metrics.throughput_tps <= 8 / 7.2 + 0.05

    def test_utilizations_are_fractions(self):
        metrics = run(scheduler="C2PL", rate=0.7).metrics
        assert 0 <= metrics.dn_utilization <= 1
        assert 0 <= metrics.cn_utilization <= 1

    def test_response_time_at_least_service_demand(self):
        # 7.2 objects = 7200 clocks of pure service.
        metrics = run(rate=0.05).metrics
        assert metrics.mean_response_time >= 7200


class TestDirectionalLaws:
    def test_faster_objects_mean_faster_responses(self):
        slow = run(rate=0.2, obj_time=1000.0).metrics
        fast = run(rate=0.2, obj_time=500.0).metrics
        assert fast.mean_response_time < slow.mean_response_time

    def test_obj_time_scales_underloaded_rt_roughly_linearly(self):
        slow = run(rate=0.05, obj_time=1000.0).metrics
        fast = run(rate=0.05, obj_time=500.0).metrics
        ratio = slow.mean_response_time / fast.mean_response_time
        assert 1.5 < ratio < 2.5

    def test_dn_utilization_grows_with_load(self):
        light = run(rate=0.2).metrics
        heavy = run(rate=0.8).metrics
        assert heavy.dn_utilization > light.dn_utilization

    def test_retry_delay_zero_is_rejected(self):
        # Zero would let a blocked transaction re-request forever at one
        # instant — the clock could never advance — so it is invalid.
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="retry_delay"):
            run(scheduler="C2PL", rate=0.5, retry_delay=0.0)

    def test_tiny_retry_delay_still_terminates(self):
        metrics = run(scheduler="C2PL", rate=0.5, retry_delay=1.0,
                      sim_clocks=60_000).metrics
        assert metrics.commits > 0

    def test_more_partitions_less_contention(self):
        """Spreading Pattern1 over more files reduces conflicts."""
        few = run(scheduler="C2PL", rate=0.5).metrics

        params = SimulationParameters(scheduler="C2PL",
                                      arrival_rate_tps=0.5,
                                      num_partitions=64, **BASE)
        many = run_simulation(params, pattern1(num_partitions=64),
                              catalog=pattern1_catalog(num_partitions=64))
        assert many.metrics.mean_response_time < few.mean_response_time

    def test_warmup_reduces_sample_but_not_wildly_the_mean(self):
        cold = run(rate=0.3).metrics
        warm = run(rate=0.3, warmup_clocks=50_000).metrics
        assert warm.commits < cold.commits
        # Underloaded steady state: means should be in the same ballpark.
        assert warm.mean_response_time == pytest.approx(
            cold.mean_response_time, rel=0.5)


class TestSchedulerOrderingLaw:
    def test_nodc_upper_bounds_real_schedulers(self):
        nodc = run(scheduler="NODC", rate=0.8).metrics
        for scheduler in ("ASL", "C2PL", "CHAIN", "K2"):
            real = run(scheduler=scheduler, rate=0.8).metrics
            assert real.throughput_tps <= nodc.throughput_tps + 0.05
