"""Tests for the intra-transaction-parallelism extension (declustering).

The paper's conclusion 4: under range partitioning, data contention
limits inter-transaction parallelism, so useful utilization stalls well
below resources; distributing files across all nodes (full declustering)
buys intra-transaction parallelism at the price of message overhead.
"""

import pytest

from repro import Catalog, SimulationParameters, run_simulation
from repro.core import Step, TransactionSpec
from repro.workloads import pattern1


def run(declustered, scheduler="NODC", rate=0.3, clocks=200_000, seed=5):
    catalog = Catalog.uniform(16, 5.0, 8, declustered=declustered)
    params = SimulationParameters(scheduler=scheduler, arrival_rate_tps=rate,
                                  sim_clocks=clocks, seed=seed,
                                  num_partitions=16)
    return run_simulation(params, pattern1(), catalog=catalog)


class TestPlacementModel:
    def test_uniform_declustered_flag(self):
        catalog = Catalog.uniform(4, 5.0, 8, declustered=True)
        assert all(catalog.partition(pid).declustered for pid in range(4))
        assert not Catalog.uniform(4, 5.0, 8).partition(0).declustered


class TestSingleTransactionSpeedup:
    def one_bat(self, declustered):
        catalog = Catalog.uniform(8, 5.0, 8, declustered=declustered)
        params = SimulationParameters(scheduler="NODC",
                                      arrival_rate_tps=0.001,
                                      sim_clocks=60_000, seed=1,
                                      num_partitions=8)

        def workload(tid, streams):
            return TransactionSpec(tid, [Step.read(0, 8.0)])

        return run_simulation(params, workload, catalog=catalog).metrics

    def test_bulk_scan_parallelises_across_nodes(self):
        serial = self.one_bat(declustered=False)
        parallel = self.one_bat(declustered=True)
        # An 8-object scan takes ~8 s on one node, ~1 s over 8 nodes.
        assert serial.mean_response_time >= 8000
        assert parallel.mean_response_time < serial.mean_response_time / 4

    def test_weight_messages_identical_total_objects(self):
        serial = self.one_bat(declustered=False)
        parallel = self.one_bat(declustered=True)
        # Same objects processed either way (same commits at this rate).
        assert serial.commits == parallel.commits


class TestThroughputAndUtilization:
    def test_declustering_raises_utilization_under_load(self):
        ranged = run(False, scheduler="K2", rate=0.9).metrics
        spread = run(True, scheduler="K2", rate=0.9).metrics
        assert spread.dn_utilization > ranged.dn_utilization
        assert spread.throughput_tps > ranged.throughput_tps

    def test_paper_conclusion_4_high_useful_utilization(self):
        """With declustering, useful utilization can exceed 90 % of the
        NODC bound — unreachable under range partitioning (paper: ~64 %)."""
        nodc = run(True, scheduler="NODC", rate=0.9).metrics
        k2 = run(True, scheduler="K2", rate=0.9).metrics
        assert k2.throughput_tps / nodc.throughput_tps > 0.9

    def test_serializability_preserved_when_declustered(self):
        catalog = Catalog.uniform(16, 5.0, 8, declustered=True)
        params = SimulationParameters(scheduler="C2PL", arrival_rate_tps=0.6,
                                      sim_clocks=150_000, seed=3,
                                      num_partitions=16)
        result = run_simulation(params, pattern1(), catalog=catalog,
                                record_history=True)
        assert result.metrics.commits > 0
        result.history.check_lock_exclusion()
        result.history.check_serializable()
