"""Tests for the intra-transaction-parallelism extension (declustering).

The paper's conclusion 4: under range partitioning, data contention
limits inter-transaction parallelism, so useful utilization stalls well
below resources; distributing files across all nodes (full declustering)
buys intra-transaction parallelism at the price of message overhead.
"""

import math

import pytest

from repro import Catalog, SimulationParameters, run_simulation
from repro.core import Step, TransactionSpec
from repro.machine.cluster import Cluster
from repro.machine.control_node import declustered_shares
from repro.workloads import pattern1


def run(declustered, scheduler="NODC", rate=0.3, clocks=200_000, seed=5):
    catalog = Catalog.uniform(16, 5.0, 8, declustered=declustered)
    params = SimulationParameters(scheduler=scheduler, arrival_rate_tps=rate,
                                  sim_clocks=clocks, seed=seed,
                                  num_partitions=16)
    return run_simulation(params, pattern1(), catalog=catalog)


class TestPlacementModel:
    def test_uniform_declustered_flag(self):
        catalog = Catalog.uniform(4, 5.0, 8, declustered=True)
        assert all(catalog.partition(pid).declustered for pid in range(4))
        assert not Catalog.uniform(4, 5.0, 8).partition(0).declustered


class TestDeclusteredShares:
    """Regression: ``step.cost / n`` copies drift — n repetitions of the
    rounded quotient do not sum back to the step cost, so per-node object
    counts stopped adding up.  The telescoping split must conserve the
    total *exactly* while staying near-equal."""

    @pytest.mark.parametrize("cost", [10.0, 8.2, 0.2, 1.0, 7.0,
                                      1.0 / 3.0, 1e-7, 123.456789,
                                      5.000000000000001])
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8])
    def test_shares_sum_exactly(self, cost, n):
        shares = declustered_shares(cost, n)
        assert len(shares) == n
        assert math.fsum([]) == 0.0  # anchor: fsum is exact below
        total = 0.0
        for share in shares:
            total += share
        # Conservation is in *sequential float addition* — the order the
        # dispatch loop accumulates — not merely in exact arithmetic.
        assert total == cost

    @pytest.mark.parametrize("cost", [10.0, 8.2, 0.2, 1.0 / 3.0, 123.456789])
    @pytest.mark.parametrize("n", [2, 3, 8])
    def test_shares_stay_near_equal(self, cost, n):
        shares = declustered_shares(cost, n)
        ideal = cost / n
        for share in shares:
            # Each prefix difference is within a few ulps of the ideal,
            # so declustered completion time (the max share) cannot
            # regress the near-perfect load balance of the naive split.
            assert abs(share - ideal) <= 8 * math.ulp(ideal) + 1e-300

    def test_integer_costs_split_conserves_whole_objects(self):
        shares = declustered_shares(10.0, 8)
        total = 0.0
        for share in shares:
            total += share
        assert total == 10.0
        assert max(shares) - min(shares) <= 2 * math.ulp(10.0 / 8)


class TestObjectConservation:
    @pytest.mark.parametrize("cost", [8.0, 8.2, 10.0, 7.3, 0.9, 12.5])
    def test_single_declustered_step_conserves_objects_exactly(self, cost):
        """End-to-end conservation of one declustered step: the per-node
        quanta actually processed sum back to the step cost *exactly* —
        the regression was remainder drift between the dispatched shares
        and the step's declared cost."""
        catalog = Catalog.uniform(8, 5.0, 8, declustered=True)
        params = SimulationParameters(scheduler="NODC",
                                      arrival_rate_tps=0.0001,
                                      sim_clocks=80_000, seed=1,
                                      num_partitions=8)

        def workload(tid, streams):
            return TransactionSpec(tid, [Step.read(0, cost)])

        cluster = Cluster(params, workload, catalog=catalog)
        result = cluster.run()
        assert result.metrics.commits == 1
        processed = 0.0
        for dn in cluster.data_nodes:
            processed += dn.objects_processed
        assert processed == cost  # exact, not approx

    def test_loaded_declustered_run_tracks_completed_work(self):
        """At load, cluster-wide processed objects stay consistent with
        the committed transactions' accounting — drift would compound
        over thousands of dispatches."""
        catalog = Catalog.uniform(8, 5.0, 8, declustered=True)
        params = SimulationParameters(scheduler="K2", arrival_rate_tps=0.6,
                                      sim_clocks=150_000, seed=7,
                                      num_partitions=8)
        cluster = Cluster(params, pattern1(num_partitions=8),
                          catalog=catalog)
        result = cluster.run()
        assert result.metrics.commits > 10
        processed = sum(dn.objects_processed for dn in cluster.data_nodes)
        # Committed BATs account for 7.2 objects each (Pattern1:
        # 1 + 5 + 0.2 + 1); work still in flight at the cutoff and
        # wasted attempts only add on top.
        assert processed >= result.metrics.commits * 7.2 - 1e-6


class TestSingleTransactionSpeedup:
    def one_bat(self, declustered):
        catalog = Catalog.uniform(8, 5.0, 8, declustered=declustered)
        params = SimulationParameters(scheduler="NODC",
                                      arrival_rate_tps=0.001,
                                      sim_clocks=60_000, seed=1,
                                      num_partitions=8)

        def workload(tid, streams):
            return TransactionSpec(tid, [Step.read(0, 8.0)])

        return run_simulation(params, workload, catalog=catalog).metrics

    def test_bulk_scan_parallelises_across_nodes(self):
        serial = self.one_bat(declustered=False)
        parallel = self.one_bat(declustered=True)
        # An 8-object scan takes ~8 s on one node, ~1 s over 8 nodes.
        assert serial.mean_response_time >= 8000
        assert parallel.mean_response_time < serial.mean_response_time / 4

    def test_weight_messages_identical_total_objects(self):
        serial = self.one_bat(declustered=False)
        parallel = self.one_bat(declustered=True)
        # Same objects processed either way (same commits at this rate).
        assert serial.commits == parallel.commits


class TestThroughputAndUtilization:
    def test_declustering_raises_utilization_under_load(self):
        ranged = run(False, scheduler="K2", rate=0.9).metrics
        spread = run(True, scheduler="K2", rate=0.9).metrics
        assert spread.dn_utilization > ranged.dn_utilization
        assert spread.throughput_tps > ranged.throughput_tps

    def test_paper_conclusion_4_high_useful_utilization(self):
        """With declustering, useful utilization can exceed 90 % of the
        NODC bound — unreachable under range partitioning (paper: ~64 %)."""
        nodc = run(True, scheduler="NODC", rate=0.9).metrics
        k2 = run(True, scheduler="K2", rate=0.9).metrics
        assert k2.throughput_tps / nodc.throughput_tps > 0.9

    def test_serializability_preserved_when_declustered(self):
        catalog = Catalog.uniform(16, 5.0, 8, declustered=True)
        params = SimulationParameters(scheduler="C2PL", arrival_rate_tps=0.6,
                                      sim_clocks=150_000, seed=3,
                                      num_partitions=16)
        result = run_simulation(params, pattern1(), catalog=catalog,
                                record_history=True)
        assert result.metrics.commits > 0
        result.history.check_lock_exclusion()
        result.history.check_serializable()
