"""Batched-vs-reference data-node equivalence: byte-identical runs.

The batched loop (``node_mode="batched"``) must be indistinguishable from
the literal one-timeout-per-quantum loop across every observable surface:
trace streams, run metrics, per-node counters, scheduler stats — under
every scheduler and under fault plans, and without float drift over a
million quanta.
"""

import json

import pytest

from repro.config import SimulationParameters
from repro.core import Step, TransactionRuntime, TransactionSpec
from repro.engine import Environment
from repro.faults import FaultPlan, NodeCrash, PartitionSlowdown, RetryPolicy
from repro.machine import DataNode
from repro.machine.cluster import Cluster
from repro.machine.trace import Tracer
from repro.workloads import pattern1, pattern1_catalog

SCHEDULERS = ["CHAIN", "K2", "C2PL", "2PL"]

FAULT_PLAN = FaultPlan(
    crashes=(NodeCrash(2, 15_000.0, recover_at=25_000.0),),
    slowdowns=(PartitionSlowdown(3, 2.0, 5_000.0, 40_000.0),),
    abort_rate=0.25, declared_cost_sigma=0.5, cascade=True,
    retry=RetryPolicy(kind="exponential", delay=200.0, cap=5_000.0))


def run_fingerprint(scheduler, node_mode, fault_plan=None):
    params = SimulationParameters(scheduler=scheduler, arrival_rate_tps=0.6,
                                  sim_clocks=60_000, seed=11,
                                  num_partitions=16, node_mode=node_mode)
    cluster = Cluster(params, pattern1(), catalog=pattern1_catalog(),
                      tracer=Tracer(), fault_plan=fault_plan)
    result = cluster.run()
    trace_bytes = "\n".join(e.to_json() for e in result.tracer.events)
    metrics_bytes = json.dumps(result.metrics.as_dict(), sort_keys=True)
    node_bytes = json.dumps([(dn.busy_time, dn.objects_processed,
                              dn.messages_sent)
                             for dn in cluster.data_nodes])
    return trace_bytes, metrics_bytes, node_bytes


class TestClusterEquivalence:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_fault_free_runs_are_byte_identical(self, scheduler):
        batched = run_fingerprint(scheduler, "batched")
        reference = run_fingerprint(scheduler, "reference")
        assert batched[0] == reference[0], "traces diverged"
        assert batched[1] == reference[1], "metrics diverged"
        assert batched[2] == reference[2], "node counters diverged"

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_faulted_runs_are_byte_identical(self, scheduler):
        batched = run_fingerprint(scheduler, "batched", FAULT_PLAN)
        reference = run_fingerprint(scheduler, "reference", FAULT_PLAN)
        assert batched[0] == reference[0], "traces diverged under faults"
        assert batched[1] == reference[1], "metrics diverged under faults"
        assert batched[2] == reference[2], "node counters diverged"


# -- raw-node scenarios -------------------------------------------------------


def rt(tid, cost=10.0):
    return TransactionRuntime(TransactionSpec(tid, [Step.read(0, cost)]))


def drive(mode, scenario):
    """Run ``scenario(env, node, log)`` and fingerprint everything."""
    log = []
    env = Environment()
    node = DataNode(env, 0, obj_time=1000.0, mode=mode,
                    on_objects=lambda txn, q: log.append((txn.tid, q)))
    completions = scenario(env, node, log)
    return (log, node.busy_time, node.objects_processed, node.messages_sent,
            [(e.triggered, e.ok if e.triggered else None,
              env.now) for e in completions])


def both_modes(scenario):
    return (drive("batched", scenario), drive("reference", scenario))


def guarded(event):
    """Mark a done event defused: the test reads its outcome directly."""
    event._defused = True
    return event


def test_round_robin_with_fractional_tails_is_identical():
    def scenario(env, node, log):
        done = [node.submit(rt(1), 3.2), node.submit(rt(2), 5.0)]
        env.run(until=env.all_of(done))
        return done
    batched, reference = both_modes(scenario)
    assert batched == reference


def test_staggered_submission_joins_rotation_identically():
    def scenario(env, node, log):
        done = [node.submit(rt(1), 6.0)]

        def late():
            yield env.timeout(2500.0)
            done.append(node.submit(rt(2), 2.5))
        env.process(late())
        env.run(until=30_000)
        return done
    batched, reference = both_modes(scenario)
    assert batched == reference


def test_crash_mid_batch_is_identical():
    def scenario(env, node, log):
        done = [guarded(node.submit(rt(1), 8.0)),
                guarded(node.submit(rt(2), 4.0))]

        def crash():
            yield env.timeout(3500.0)
            node.crash()
            yield env.timeout(2000.0)
            node.recover()
        env.process(crash())
        env.run(until=30_000)
        return done
    batched, reference = both_modes(scenario)
    assert batched == reference


def test_cancel_mid_batch_is_identical():
    def scenario(env, node, log):
        done = [guarded(node.submit(rt(1), 8.0)),
                guarded(node.submit(rt(2), 4.0))]

        def cancel():
            yield env.timeout(4500.0)
            node.cancel(1)
        env.process(cancel())
        env.run(until=30_000)
        return done
    batched, reference = both_modes(scenario)
    assert batched == reference


def test_slowdown_window_is_identical():
    def scenario(env, node, log):
        done = [node.submit(rt(1), 10.0)]

        def slow():
            yield env.timeout(1500.0)
            token = node.apply_slowdown(2.5)
            yield env.timeout(4000.0)
            node.clear_slowdown(token)
        env.process(slow())
        env.run(until=60_000)
        return done
    batched, reference = both_modes(scenario)
    assert batched == reference


def test_million_quanta_no_float_drift():
    """10^6 whole quanta plus a fractional tail: every accumulator and
    the completion instant must match the reference loop bit-for-bit
    (no _EPSILON or rounding divergence over long batches)."""
    objects = 1_000_000.2

    def run(mode):
        env = Environment()
        totals = [0.0, 0]
        node = DataNode(env, 0, obj_time=1000.0, mode=mode,
                        on_objects=lambda txn, q: [
                            totals.__setitem__(0, totals[0] + q),
                            totals.__setitem__(1, totals[1] + 1)])
        done = node.submit(rt(1, cost=objects), objects)
        env.run(until=done)
        return (env.now, node.busy_time, node.objects_processed,
                node.messages_sent, totals[0], totals[1])

    assert run("batched") == run("reference")


def test_fractional_arrival_offset_no_drift():
    """A non-representable start offset: boundary additions round, and
    the batched loop must round the same way the reference chain does."""
    def scenario(env, node, log):
        done = []

        def start():
            yield env.timeout(0.1)  # 0.1 is not exactly representable
            done.append(node.submit(rt(1), 4097.2))
        env.process(start())
        env.run(until=5_000_000)
        return done
    batched, reference = both_modes(scenario)
    assert batched == reference


# -- satellite regressions ----------------------------------------------------


def test_crash_counts_only_actually_failed_steps():
    """A resident item whose ``done`` already triggered (completed in
    this very instant) must not inflate the crash kill count."""
    env = Environment()
    node = DataNode(env, 0, obj_time=1000.0)
    item_done = node.submit(rt(1), 2.0)
    env.run(until=item_done)
    # Manufacture the race: re-insert the finished item as if a cascade
    # had already completed its done event, then crash.
    from repro.machine.data_node import _WorkItem
    finished = _WorkItem(rt(2), 1.0, env.event())
    finished.done.succeed()
    node._queue.append(finished)
    live = node.submit(rt(3), 3.0)
    assert node.crash() == 1  # only the live step counts
    assert live.triggered and not live.ok


def test_cancel_counts_only_actually_failed_steps():
    env = Environment()
    node = DataNode(env, 0, obj_time=1000.0)
    from repro.machine.data_node import _WorkItem
    finished = _WorkItem(rt(7), 1.0, env.event())
    finished.done.succeed()
    node._queue.append(finished)
    node.submit(rt(7), 3.0)
    assert node.cancel(7) == 1


def test_slowdown_tokens_distinguish_equal_factors():
    env = Environment()
    node = DataNode(env, 0, obj_time=1000.0)
    first = node.apply_slowdown(2.0)
    second = node.apply_slowdown(2.0)
    node.clear_slowdown(first)
    # The second, numerically equal window must still be active.
    assert node._service_time(1.0) == 2000.0
    node.clear_slowdown(second)
    assert node._service_time(1.0) == 1000.0
    with pytest.raises(ValueError):
        node.clear_slowdown(second)  # double clear is rejected


def test_invalid_node_mode_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        DataNode(env, 0, obj_time=1000.0, mode="warp")
