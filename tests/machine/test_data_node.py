"""Unit tests for the round-robin data node."""

import pytest

from repro.core import Step, TransactionRuntime, TransactionSpec
from repro.engine import Environment
from repro.machine import DataNode


def rt(tid):
    return TransactionRuntime(TransactionSpec(tid, [Step.read(0, 10)]))


def test_single_step_takes_cost_times_objtime():
    env = Environment()
    node = DataNode(env, 0, obj_time=1000)
    done = node.submit(rt(1), objects=3)
    env.run(until=done)
    assert env.now == 3000


def test_fractional_trailing_quantum():
    env = Environment()
    node = DataNode(env, 0, obj_time=1000)
    done = node.submit(rt(1), objects=1.2)  # Pattern1's w(F1:0.2) shape
    env.run(until=done)
    assert env.now == pytest.approx(1200)


def test_zero_cost_step_completes_immediately():
    env = Environment()
    node = DataNode(env, 0, obj_time=1000)
    done = node.submit(rt(1), objects=0.0)
    assert done.triggered


def test_round_robin_interleaves_per_object():
    """Two 2-object steps finish at 3 and 4 objects of elapsed time —
    not 2 and 4 as FIFO would give."""
    env = Environment()
    node = DataNode(env, 0, obj_time=1000)
    finish = {}

    def watch(env, node, name, objects):
        yield node.submit(rt(1 if name == "a" else 2), objects)
        finish[name] = env.now

    env.process(watch(env, node, "a", 2))
    env.process(watch(env, node, "b", 2))
    env.run()
    assert finish == {"a": 3000, "b": 4000}


def test_later_arrival_joins_rotation():
    env = Environment()
    node = DataNode(env, 0, obj_time=1000)
    finish = {}

    def submit_at(env, node, name, delay, objects, tid):
        yield env.timeout(delay)
        yield node.submit(rt(tid), objects)
        finish[name] = env.now

    env.process(submit_at(env, node, "first", 0, 3, 1))
    env.process(submit_at(env, node, "late", 1500, 1, 2))
    env.run()
    # first: objects at 1000, 2000 then shares; late's object runs third.
    assert finish["late"] == 3000
    assert finish["first"] == 4000


def test_objects_callback_reports_each_quantum():
    env = Environment()
    reported = []
    node = DataNode(env, 0, obj_time=100,
                    on_objects=lambda txn, n: reported.append((txn.tid, n)))
    done = node.submit(rt(7), objects=2.5)
    env.run(until=done)
    assert reported == [(7, 1.0), (7, 1.0), (7, 0.5)]


def test_busy_time_and_utilization():
    env = Environment()
    node = DataNode(env, 0, obj_time=1000)
    done = node.submit(rt(1), objects=2)
    env.run(until=done)
    env.run(until=10_000)
    assert node.busy_time == 2000
    assert node.utilization(10_000) == pytest.approx(0.2)
    assert node.utilization(0) == 0.0


def test_messages_counted_per_quantum():
    env = Environment()
    node = DataNode(env, 0, obj_time=100)
    done = node.submit(rt(1), objects=3)
    env.run(until=done)
    assert node.messages_sent == 3


def test_resident_transactions_gauge():
    env = Environment()
    node = DataNode(env, 0, obj_time=1000)
    node.submit(rt(1), 5)
    node.submit(rt(2), 5)
    assert node.resident_transactions == 2


def test_idle_node_wakes_on_submission():
    env = Environment()
    node = DataNode(env, 0, obj_time=1000)
    env.run(until=5000)  # idle spin
    done = node.submit(rt(1), 1)
    env.run(until=done)
    assert env.now == 6000


def test_invalid_obj_time_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        DataNode(env, 0, obj_time=0)
